"""Deterministic fault injection: armed crash points and the plan that fires them.

A :class:`FaultPlan` arms named *crash points* — fixed places inside the
storage layer where a crash would leave metadata structures mutually
inconsistent (a torn container write, the gap between copy-forward and index
repoint, the gap between container deletion and recipe purge, …).  Code
reaches a point by calling :meth:`repro.simio.disk.DiskModel.crash_point`;
when the plan's armed occurrence count is hit, a typed
:class:`~repro.errors.SimulatedCrash` is raised and the run stops exactly
there.  Everything is counted deterministically, so the same plan over the
same workload crashes at the same instruction every time.

A plan fires at most once: after :attr:`FaultPlan.fired` is set, subsequent
``reached`` calls only keep counting, so recovery and continued operation on
the survived system never re-crash.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigError, SimulatedCrash
from repro.util.rng import DeterministicRng

#: Every crash point the storage layer exposes, in pipeline order.
CRASH_POINTS = (
    # A container write that charged its I/O but never journal-committed.
    "store.commit.torn",
    # Mid-mark abort: read-only, the cheapest crash to survive.
    "gc.mark",
    # Copy-forward destination sealed, index not yet repointed at it.
    "sweep.repoint",
    # Invalid index keys dropped, container deletion not yet durable.
    "sweep.delete",
    # Sweep complete, logically deleted recipes not yet purged.
    "gc.purge",
    # GCCDF segment written, its source containers not yet reclaimed.
    "gccdf.segment",
    # MFDedup ingest-time volume migration performed, ingest not committed.
    "mfdedup.migrate",
    # MFDedup reorg intent journaled, expired volumes not yet unlinked.
    "mfdedup.reorg",
    # Boundary between two budgeted increments of an incremental GC cycle.
    "gc.increment",
    # Hybrid rededup: recipes repointed at the canonical copy, duplicate
    # key not yet dropped from the index (the intent rolls forward).
    "gc.rededup",
)

#: Crash points reachable by the shared container-based GC protocol.
CONTAINER_POINTS = (
    "store.commit.torn",
    "gc.mark",
    "sweep.repoint",
    "sweep.delete",
    "gc.purge",
)

#: Crash points reachable per approach name (``make_service`` spelling).
def points_for(
    approach: str, gc_mode: str = "stw", dedup_mode: str = "inline"
) -> tuple[str, ...]:
    """The crash points an approach's data path can actually reach.

    ``gc_mode="incremental"`` adds the ``gc.increment`` boundary point; the
    copy-forward seal/reclaim protocol and every other point are unchanged
    (incremental cycles journal one ``gc.cycle`` intent instead of per-round
    ``sweep`` intents, but ``gc.purge`` still guards the final purge).

    ``dedup_mode="hybrid"`` adds the ``gc.rededup`` coalesce point for the
    approaches whose pipeline actually takes the hybrid path — naive and
    gccdf (rewriting policies and MFDedup fall back to their inline
    engines, and nondedup never defers).
    """
    if approach == "mfdedup":
        base = ("mfdedup.migrate", "mfdedup.reorg")
    elif approach == "gccdf":
        base = CONTAINER_POINTS + ("gccdf.segment",)
    else:
        base = CONTAINER_POINTS
    if dedup_mode == "hybrid" and approach in ("naive", "gccdf"):
        base = base + ("gc.rededup",)
    if gc_mode == "incremental":
        return base + ("gc.increment",)
    return base


@dataclass(frozen=True)
class CrashRecord:
    """What fired: the point, its occurrence, and the site's context."""

    point: str
    occurrence: int
    context: dict = field(default_factory=dict)


class FaultPlan:
    """Armed crash points with 1-based occurrence counts.

    ``FaultPlan({"sweep.delete": 3})`` crashes the third time the sweep is
    about to make a container deletion durable.  :meth:`single` builds the
    common one-point plan; :meth:`seeded` derives point and occurrence from
    an integer seed for randomized-but-reproducible campaigns.
    """

    def __init__(self, arms: dict[str, int] | None = None):
        arms = dict(arms or {})
        for point, occurrence in arms.items():
            if point not in CRASH_POINTS:
                raise ConfigError(
                    f"unknown crash point {point!r}; choose from {CRASH_POINTS}"
                )
            if occurrence < 1:
                raise ConfigError("crash occurrence counts are 1-based")
        self._arms = arms
        #: point → times reached so far (counted whether armed or not).
        self.hits: dict[str, int] = {}
        #: Set once the armed occurrence fires; the plan never fires again.
        self.fired: CrashRecord | None = None

    @classmethod
    def single(cls, point: str, occurrence: int = 1) -> "FaultPlan":
        """Arm exactly one point at one occurrence."""
        return cls({point: occurrence})

    @classmethod
    def seeded(
        cls,
        seed: int,
        points: tuple[str, ...] = CRASH_POINTS,
        max_occurrence: int = 4,
    ) -> "FaultPlan":
        """Derive a one-point plan deterministically from ``seed``."""
        rng = DeterministicRng(seed).fork("fault-plan")
        point = rng.choice(list(points))
        return cls({point: rng.randint(1, max_occurrence)})

    @property
    def arms(self) -> dict[str, int]:
        return dict(self._arms)

    def reached(self, point: str, **context) -> None:
        """Count one arrival at ``point``; raise if its armed occurrence hit."""
        self.hits[point] = count = self.hits.get(point, 0) + 1
        if self.fired is not None:
            return
        occurrence = self._arms.get(point)
        if occurrence is not None and count == occurrence:
            self.fired = CrashRecord(point=point, occurrence=count, context=dict(context))
            raise SimulatedCrash(
                f"injected crash at {point} (occurrence {count})",
                point=point,
                occurrence=count,
                context=context,
            )

    def __repr__(self) -> str:
        state = f"fired at {self.fired.point}" if self.fired else "armed"
        return f"FaultPlan({self._arms}, {state})"
