"""Crash recovery: roll incomplete journaled intents back or forward.

Run after a :class:`~repro.errors.SimulatedCrash` (the surviving in-memory
object graph *is* the post-crash disk image).  Recovery walks the device's
:class:`~repro.faults.journal.IntentJournal` and applies one fixed rule per
intent kind — the direction is decided by where each protocol places its
durable point, never by inspecting the damage:

=================  =========  ==============================================
kind               state      recovery action
=================  =========  ==============================================
container.write    open       **roll back** — drop the torn container and
                              scrub index keys that point at it
copyforward        open       **roll back** — repoint any applied moves to
                              their source (still alive by protocol) and
                              drop the destination container
reclaim            any        **roll forward** — re-drop the invalid keys
                              (idempotent) and delete the container; its
                              valid chunks were durably repointed before the
                              reclaim intent began
rededup            any        **roll forward** — finish repointing every
                              referencing recipe at the canonical copy
                              (idempotent), drop the duplicate key, and
                              restore the hybrid bookkeeping (candidate
                              removed, container queued for the sweep)
sweep              open       **roll back** — abort the round; deleted
                              recipes remain and the next GC re-collects
sweep              committed  **roll forward** — purge deleted recipes
mfdedup.ingest     open       **roll back** — undo recorded volume
                              migrations in reverse order (a partial forward
                              migration would break the next ingest's
                              lifecycle chain)
volume.reorg       any        **roll forward** — replay ``drop_expired`` and
                              the per-volume unlink writes (idempotent)
gc.cycle           committed  **roll forward** — finish the selective purge
                              of the cycle's deleted-recipe snapshot
gc.cycle           open       **resume** — repair the persistent cycle state
                              in place (scrub moves whose repoint did not
                              survive, drop the placement memo, rewind the
                              sweep frontier past reclaimed sources) and
                              leave the intent *open*: the incremental
                              engine resumes the cycle from the journal
                              rather than restarting it
=================  =========  ==============================================

One repair is record-less: recovery also scrubs *dangling* index keys —
placements naming a container the store does not hold.  A crash mid-ingest
leaves those behind for the writer's still-open container, which never
reached its durable point and therefore never journaled anything.

Everything here is duck-typed on purpose: the module must be importable
from ``repro.storage`` (which journals its own mutations) without creating
an import cycle, so it names no storage types — only the methods it calls.
Recovery emits a ``recovery`` span plus ``recovery.rollback`` /
``recovery.replay`` point events through the device's tracer.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.faults.journal import OPEN, IntentJournal, IntentRecord


@dataclass(frozen=True)
class RecoveryAction:
    """One journal record resolved during recovery."""

    kind: str
    #: ``"rollback"`` (undone) or ``"replay"`` (completed forward).
    action: str
    detail: dict = field(default_factory=dict)


@dataclass
class RecoveryReport:
    """Everything one recovery pass did."""

    actions: list[RecoveryAction] = field(default_factory=list)
    #: Containers dropped (torn writes + rolled-back copy-forward targets).
    containers_dropped: int = 0
    #: Containers whose deletion was completed forward.
    containers_deleted: int = 0
    #: Index keys scrubbed or repointed while undoing partial migration.
    index_keys_fixed: int = 0
    #: Volume migrations undone (MFDedup ingest rollback).
    migrations_rolled_back: int = 0
    #: Expired volumes dropped by a replayed reorg.
    volumes_dropped: int = 0
    #: Logically deleted backups purged by a replayed sweep commit.
    backups_purged: int = 0
    #: Incremental GC cycles repaired in place and left open to resume.
    cycles_resumed: int = 0

    @property
    def rolled_back(self) -> int:
        return sum(1 for a in self.actions if a.action == "rollback")

    @property
    def replayed(self) -> int:
        return sum(1 for a in self.actions if a.action == "replay")

    @property
    def clean(self) -> bool:
        """True when the journal held no incomplete intents at all."""
        return not self.actions

    def record(self, journal: IntentJournal, rec: IntentRecord, action: str, **detail) -> None:
        self.actions.append(RecoveryAction(kind=rec.kind, action=action, detail=detail))
        if action == "resume":
            return  # the intent stays open: its cycle resumes from the journal
        if rec.state == OPEN:
            if action == "replay":
                journal.commit(rec)
                journal.close(rec)
            else:
                journal.abort(rec)
        else:
            journal.close(rec)

    def summary(self) -> str:
        if self.clean:
            return "recovery: journal clean, nothing to repair"
        return (
            f"recovery: {self.rolled_back} rolled back / {self.replayed} replayed — "
            f"{self.containers_dropped} containers dropped, "
            f"{self.containers_deleted} deletions completed, "
            f"{self.index_keys_fixed} index keys fixed, "
            f"{self.migrations_rolled_back} volume migrations undone, "
            f"{self.volumes_dropped} volumes dropped, "
            f"{self.backups_purged} backups purged, "
            f"{self.cycles_resumed} GC cycles resumed"
        )


def _emit(disk, action: RecoveryAction) -> None:
    tracer = disk.tracer
    if tracer.enabled:
        tracer.emit(
            f"recovery.{action.action}",
            sim_time=disk.sim_time,
            fields={"kind": action.kind, **action.detail},
        )


def recover(store, index, recipes, hybrid=None) -> RecoveryReport:
    """Repair a container-based system (store + fingerprint index + recipes).

    ``hybrid`` is the service's :class:`~repro.dedup.hybrid.HybridState`
    when it runs in hybrid dedup mode — a replayed ``rededup`` intent must
    also restore the out-of-line bookkeeping (candidate set, pending-sweep
    queue, neighbor maps) that the interrupted slice would have updated.

    Safe to call on a healthy system: with an empty journal it is a no-op
    (and charges no simulated I/O either way — repairs only rewrite
    metadata or unlink containers).
    """
    journal: IntentJournal = store.journal
    report = RecoveryReport()
    disk = store.disk
    with disk.phase("recovery") as ph:
        # 1. Torn container writes: the I/O was charged but the write never
        #    journal-committed — the container content cannot be trusted.
        for rec in journal.open_records("container.write"):
            cid = rec.payload["container_id"]
            if cid in store:
                store.discard_container(cid)
            stale = [fp for fp, placement in index.items() if placement.container_id == cid]
            for fp in stale:
                index.discard(fp)
            report.containers_dropped += 1
            report.index_keys_fixed += len(stale)
            report.record(journal, rec, "rollback", container_id=cid, stale_keys=len(stale))
            _emit(disk, report.actions[-1])

        # 2. Open copy-forwards: destination not durably repointed — undo.
        #    Sources are only reclaimed after their copy-forward closes, so
        #    every source named here is still alive and repoint-back is safe.
        for rec in journal.open_records("copyforward"):
            dest = rec.payload["destination"]
            repointed = 0
            for move in rec.payload["moves"]:
                fp = move["fp"]
                if fp in index and index.get(fp).container_id == dest:
                    index.relocate(fp, move["source"])
                    repointed += 1
            if dest in store:
                store.discard_container(dest)
                report.containers_dropped += 1
            report.index_keys_fixed += repointed
            report.record(
                journal, rec, "rollback",
                destination=dest, moves=len(rec.payload["moves"]), repointed=repointed,
            )
            _emit(disk, report.actions[-1])

        # 3. Reclaims roll forward: the container's valid chunks were sealed
        #    and repointed before the intent began, so finishing the drop is
        #    always safe (and each step is idempotent).
        for rec in journal.records("reclaim"):
            cid = rec.payload["container_id"]
            for fp in rec.payload["invalid"]:
                index.discard(fp)
            if cid in store:
                store.delete_container(cid)
                report.containers_deleted += 1
            report.record(journal, rec, "replay", container_id=cid)
            _emit(disk, report.actions[-1])

        # 3½. Dangling keys: an ingest interrupted mid-stream inserted index
        #     entries for its writer's still-open container, which the crash
        #     destroyed before it ever reached the store.  No journal record
        #     names that container (it never reached its durable point), so
        #     scrub by scanning — without this, a later ingest could dedup
        #     against a dangling key and produce an unrestorable recipe.
        dangling = [
            fp for fp, placement in index.items() if placement.container_id not in store
        ]
        for fp in dangling:
            index.discard(fp)
        report.index_keys_fixed += len(dangling)

        # 3¾. Hybrid rededup slices roll forward: the ``gc.rededup`` crash
        #     point fires after the recipe repoints but before the index
        #     drop, and repointing is idempotent (a recipe that no longer
        #     references the duplicate is untouched) — so replaying the
        #     whole slice is always safe.  Each replayed (dup → canonical)
        #     swap is also applied to any open incremental cycle's
        #     live-reference barrier below: a mid-cycle ingest may have
        #     put the duplicate key under barrier protection, which must
        #     follow the repoint or the sweep reclaims the canonical copy.
        rededup_swaps = []
        if journal.records("rededup"):
            from repro.dedup.hybrid import repoint_recipe
            from repro.dedup.keys import logical_fp

            for rec in journal.records("rededup"):
                dup = rec.payload["dup"]
                canonical = rec.payload["canonical"]
                repointed = 0
                for backup_id in rec.payload["backups"]:
                    if repoint_recipe(recipes, backup_id, dup, canonical):
                        repointed += 1
                index.discard(dup)
                rededup_swaps.append((dup, canonical))
                container_id = rec.payload["container_id"]
                if hybrid is not None:
                    hybrid.candidates.pop(dup, None)
                    if container_id in store:
                        hybrid.pending_sweep.add(container_id)
                    fp = logical_fp(dup)
                    for neighbor_map in hybrid.neighbors.values():
                        if neighbor_map.get(fp) == dup:
                            neighbor_map[fp] = canonical
                    hybrid.coalesced += 1
                report.index_keys_fixed += 1
                report.record(
                    journal, rec, "replay",
                    dup=dup.hex(), canonical=canonical.hex(), repointed=repointed,
                )
                _emit(disk, report.actions[-1])

        # 4. The sweep round itself: open → aborted round (deleted recipes
        #    remain for the next GC); committed → finish the recipe purge.
        for rec in journal.open_records("sweep"):
            report.record(journal, rec, "rollback", round_index=rec.payload.get("round_index"))
            _emit(disk, report.actions[-1])
        for rec in journal.committed_records("sweep"):
            purged = recipes.purge_deleted()
            report.backups_purged += len(purged)
            report.record(
                journal, rec, "replay",
                round_index=rec.payload.get("round_index"), backups_purged=len(purged),
            )
            _emit(disk, report.actions[-1])

        # 5. Incremental GC cycles.  Committed → only the selective purge of
        #    the cycle's snapshot can be missing; finish it.  Open → repair
        #    the persistent cycle state in place and leave the intent open,
        #    so the engine *resumes* the cycle instead of restarting it.
        for rec in journal.committed_records("gc.cycle"):
            state = rec.payload["state"]
            purged = recipes.purge_deleted(only=state.deleted_ids)
            report.backups_purged += len(purged)
            report.record(
                journal, rec, "replay",
                round_index=state.round_index, backups_purged=len(purged),
            )
            _emit(disk, report.actions[-1])
        for rec in journal.open_records("gc.cycle"):
            state = rec.payload["state"]
            # Replayed rededup slices retarget barrier protection from the
            # coalesced duplicate key to its canonical copy (the crashed
            # slice would have done this itself; see rededup_slice).
            for dup, canonical in rededup_swaps:
                if dup in state.barrier_keys:
                    state.barrier_keys.discard(dup)
                    state.barrier_keys.add(canonical)
            # Moves whose repoint did not survive the crash (their
            # destination was rolled back above) must be re-migrated.
            stale_moves = [
                fp
                for fp, dest in state.migrated.items()
                if fp not in index or index.get(fp).container_id != dest
            ]
            for fp in stale_moves:
                del state.migrated[fp]
            # Placements may have been repaired; the probe memo is stale.
            state.resolved.clear()
            if state.phase in ("sweep", "finalize"):
                # Rewind the sweep frontier: already-reclaimed sources are
                # gone from the store, everything else re-partitions (the
                # copy-forward duplicate guard makes re-processing durable
                # moves free, and fully-valid sources are skipped).
                state.phase = "sweep"
                state.sweep_queue = [
                    cid for cid in state.sweep_queue if cid in store
                ]
                state.sweep_pos = 0
                state.segment_batches = [
                    batch
                    for batch in (
                        [cid for cid in b if cid in store]
                        for b in state.segment_batches
                    )
                    if batch
                ]
                state.segment_pos = 0
                state.requeue = [cid for cid in state.requeue if cid in store]
            state.dirty = True
            report.cycles_resumed += 1
            report.record(
                journal, rec, "resume",
                round_index=state.round_index,
                phase=state.phase,
                stale_moves=len(stale_moves),
            )
            _emit(disk, report.actions[-1])

        ph.annotate(
            rolled_back=report.rolled_back,
            replayed=report.replayed,
            containers_dropped=report.containers_dropped,
            index_keys_fixed=report.index_keys_fixed,
        )
    return report


def recover_mfdedup(volumes, recipes) -> RecoveryReport:
    """Repair an MFDedup system (volume store + recipes)."""
    journal: IntentJournal = volumes.journal
    report = RecoveryReport()
    disk = volumes.disk
    with disk.phase("recovery") as ph:
        # Crashed ingest: undo its volume migrations in reverse.  Partial
        # forward migration is the dangerous state — the next ingest would
        # look for volumes ending at the previous backup and miss chunks
        # already moved ahead, breaking the lifecycle chain.
        for rec in journal.open_records("mfdedup.ingest"):
            for move in reversed(rec.payload["migrates"]):
                volumes.rollback_migrate(move["source"], move["destination"], move["fps"])
                report.migrations_rolled_back += 1
            report.record(
                journal, rec, "rollback",
                backup_id=rec.payload.get("backup_id"),
                migrations=len(rec.payload["migrates"]),
            )
            _emit(disk, report.actions[-1])

        # Volume reorg rolls forward: ``drop_expired`` is idempotent for a
        # fixed ``oldest_live``, and the unlink write is re-charged only for
        # volumes actually dropped now.
        for rec in journal.records("volume.reorg"):
            dropped, dropped_bytes = volumes.drop_expired(rec.payload["oldest_live"])
            for _ in range(dropped):
                disk.write(4096)
            report.volumes_dropped += dropped
            report.record(
                journal, rec, "replay",
                oldest_live=rec.payload["oldest_live"],
                volumes_dropped=dropped,
                bytes_dropped=dropped_bytes,
            )
            _emit(disk, report.actions[-1])

        # Incremental MFDedup cycles roll *forward*: the selective purge is
        # idempotent and the volume drops were completed by the reorg replay
        # above, so finishing the cycle is always safe (the engine observes
        # its intent closed and starts the next cycle fresh).
        for rec in journal.records("gc.cycle"):
            state = rec.payload["state"]
            purged = recipes.purge_deleted(only=state.deleted_ids)
            report.backups_purged += len(purged)
            report.record(
                journal, rec, "replay",
                round_index=state.round_index, backups_purged=len(purged),
            )
            _emit(disk, report.actions[-1])

        ph.annotate(
            rolled_back=report.rolled_back,
            replayed=report.replayed,
            migrations_rolled_back=report.migrations_rolled_back,
            volumes_dropped=report.volumes_dropped,
        )
    return report


def recover_service(service) -> RecoveryReport:
    """Repair any backup service after a :class:`~repro.errors.SimulatedCrash`.

    Dispatches on the service's storage layout: a volume store means
    MFDedup, otherwise the container-based protocol applies.
    """
    if hasattr(service, "volumes"):
        return recover_mfdedup(service.volumes, service.recipes)
    return recover(
        service.store,
        service.index,
        service.recipes,
        hybrid=getattr(service, "hybrid", None),
    )
