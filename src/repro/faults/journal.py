"""The lightweight intent journal behind crash-consistent mutation.

Every multi-step mutation of the storage layer (container write, sweep
copy-forward, container reclaim, a whole GC round, MFDedup ingest migration
and volume reorg) brackets itself with an intent record:

* :meth:`IntentJournal.begin` — the intent is *open*: the mutation may be
  half applied; recovery must roll it back or roll it forward.
* :meth:`IntentJournal.commit` — the intent is *committed*: its durable
  point has passed; recovery must roll it **forward**.
* :meth:`IntentJournal.close` — all effects applied; the record is
  truncated from the journal (a real system's log checkpoint).
* :meth:`IntentJournal.abort` — an open intent was rolled back; truncated.

The journal models an NVRAM-backed metadata log **outside the simulated data
path**: no operation here charges :class:`~repro.simio.disk.DiskModel` I/O,
so an un-faulted run produces byte-identical results with or without it
(records per *container-granular* operation keep the overhead negligible).
Mutating ``record.payload`` between begin and commit models appending to the
same intent — e.g. a copy-forward intent accumulates its moves as chunks are
appended to the destination container.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import JournalError

#: Record lifecycle states (``close``/``abort`` remove the record).
OPEN = "open"
COMMITTED = "committed"


@dataclass
class IntentRecord:
    """One journaled intent: a kind, a mutable payload, and a state."""

    intent_id: int
    kind: str
    payload: dict = field(default_factory=dict)
    state: str = OPEN


class IntentJournal:
    """Ordered live intents (open or committed) of one storage device."""

    def __init__(self) -> None:
        self._records: dict[int, IntentRecord] = {}
        self._next_id = 0
        #: Monotonic counters for auditing journal churn.
        self.begun = 0
        self.closed = 0
        self.aborted = 0

    def begin(self, kind: str, **payload) -> IntentRecord:
        """Open a new intent; the mutation may start once this returns."""
        record = IntentRecord(intent_id=self._next_id, kind=kind, payload=payload)
        self._next_id += 1
        self._records[record.intent_id] = record
        self.begun += 1
        return record

    def commit(self, record: IntentRecord) -> None:
        """Mark the intent durable: recovery now rolls it forward."""
        live = self._records.get(record.intent_id)
        if live is not record or record.state != OPEN:
            raise JournalError(
                f"cannot commit {record.kind!r} intent {record.intent_id} "
                f"(state {record.state!r})"
            )
        record.state = COMMITTED

    def close(self, record: IntentRecord) -> None:
        """All effects applied — truncate the record."""
        live = self._records.get(record.intent_id)
        if live is not record or record.state != COMMITTED:
            raise JournalError(
                f"cannot close {record.kind!r} intent {record.intent_id} "
                f"(state {record.state!r})"
            )
        del self._records[record.intent_id]
        self.closed += 1

    def abort(self, record: IntentRecord) -> None:
        """An open intent was rolled back — truncate the record."""
        live = self._records.get(record.intent_id)
        if live is not record or record.state != OPEN:
            raise JournalError(
                f"cannot abort {record.kind!r} intent {record.intent_id} "
                f"(state {record.state!r})"
            )
        del self._records[record.intent_id]
        self.aborted += 1

    def records(
        self, kind: str | None = None, state: str | None = None
    ) -> list[IntentRecord]:
        """Live records in begin order, optionally filtered."""
        return [
            record
            for intent_id, record in sorted(self._records.items())
            if (kind is None or record.kind == kind)
            and (state is None or record.state == state)
        ]

    def open_records(self, kind: str | None = None) -> list[IntentRecord]:
        return self.records(kind=kind, state=OPEN)

    def committed_records(self, kind: str | None = None) -> list[IntentRecord]:
        return self.records(kind=kind, state=COMMITTED)

    def __len__(self) -> int:
        """Number of live (not yet truncated) records."""
        return len(self._records)

    def __repr__(self) -> str:
        return f"IntentJournal({len(self._records)} live, {self.begun} begun)"
