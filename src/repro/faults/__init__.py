"""Deterministic fault injection and crash recovery.

The paper's piggybacked defragmentation makes GC a *mutating* pass — sweep,
copy-forward, and GCCDF migration rewrite and delete containers while the
fingerprint index and recipes still point at them — so crash atomicity is
the core production risk.  This package makes crashes representable and
survivable:

* :class:`FaultPlan` arms named crash points (:data:`CRASH_POINTS`) and
  raises a typed :class:`~repro.errors.SimulatedCrash` at a chosen
  occurrence, deterministically;
* :class:`~repro.faults.journal.IntentJournal` is the NVRAM-style intent
  log the storage layer brackets its multi-step mutations with;
* :func:`recover` / :func:`recover_mfdedup` / :func:`recover_service` roll
  incomplete intents back or forward so ``verify_system`` reports zero
  errors after any injected crash.

See ``docs/fault-model.md`` for the crash points, the journal record
format, and the per-kind recovery semantics.
"""

from __future__ import annotations

from repro.errors import SimulatedCrash
from repro.faults.journal import IntentJournal, IntentRecord
from repro.faults.plan import (
    CONTAINER_POINTS,
    CRASH_POINTS,
    CrashRecord,
    FaultPlan,
    points_for,
)
from repro.faults.recovery import (
    RecoveryAction,
    RecoveryReport,
    recover,
    recover_mfdedup,
    recover_service,
)

__all__ = [
    "CONTAINER_POINTS",
    "CRASH_POINTS",
    "CrashRecord",
    "FaultPlan",
    "IntentJournal",
    "IntentRecord",
    "RecoveryAction",
    "RecoveryReport",
    "SimulatedCrash",
    "points_for",
    "recover",
    "recover_mfdedup",
    "recover_service",
]
