"""Deterministic random-number utilities.

Everything stochastic in the library (workload generation, probabilistic
deletion, gear tables, Bloom hashing) derives from explicit integer seeds so
that experiments are bit-reproducible across runs and platforms.  Seeds are
derived, never reused: :func:`derive_seed` hashes a parent seed together with
a string label so that two consumers of the same parent seed draw independent
streams.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, Sequence, TypeVar

T = TypeVar("T")

_MASK_64 = (1 << 64) - 1


def derive_seed(parent: int, *labels: str | int) -> int:
    """Derive a child seed from ``parent`` and a path of labels.

    The derivation is a BLAKE2b hash of the parent and labels, truncated to
    64 bits.  It is stable across Python versions (unlike ``hash()``).
    """
    hasher = hashlib.blake2b(digest_size=8)
    hasher.update(str(parent).encode("ascii"))
    for label in labels:
        hasher.update(b"/")
        hasher.update(str(label).encode("utf-8"))
    return int.from_bytes(hasher.digest(), "big") & _MASK_64


class DeterministicRng:
    """A thin, explicitly-seeded wrapper around :class:`random.Random`.

    It exposes only the operations the library needs, plus :meth:`fork` for
    creating an independent child stream identified by a label.
    """

    def __init__(self, seed: int):
        self.seed = seed
        self._random = random.Random(seed)

    def fork(self, *labels: str | int) -> "DeterministicRng":
        """Return an independent RNG derived from this one and ``labels``."""
        return DeterministicRng(derive_seed(self.seed, *labels))

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in the inclusive range ``[low, high]``."""
        return self._random.randint(low, high)

    def random(self) -> float:
        """Uniform float in ``[0, 1)``."""
        return self._random.random()

    def choice(self, items: Sequence[T]) -> T:
        """Uniformly choose one element of a non-empty sequence."""
        return self._random.choice(items)

    def sample(self, items: Sequence[T], k: int) -> list[T]:
        """Sample ``k`` distinct elements without replacement."""
        return self._random.sample(items, k)

    def shuffle(self, items: list) -> None:
        """Shuffle ``items`` in place."""
        self._random.shuffle(items)

    def chance(self, probability: float) -> bool:
        """Return True with the given probability."""
        return self._random.random() < probability

    def expovariate(self, lambd: float) -> float:
        """Exponentially distributed float with rate ``lambd``."""
        return self._random.expovariate(lambd)

    def gauss(self, mu: float, sigma: float) -> float:
        """Normally distributed float."""
        return self._random.gauss(mu, sigma)

    def token(self) -> int:
        """A fresh uniformly random 64-bit integer."""
        return self._random.getrandbits(64)

    def weighted_choice(self, items: Sequence[T], weights: Iterable[float]) -> T:
        """Choose one element with the given (unnormalised) weights."""
        return self._random.choices(list(items), weights=list(weights), k=1)[0]
