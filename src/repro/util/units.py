"""Byte-size units and human-readable formatting helpers.

The storage literature (and this library) uses binary units throughout:
a "4 MB container" in the paper is 4 MiB here.
"""

from __future__ import annotations

from repro.errors import ConfigError

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB
TIB = 1024 * GIB

_SUFFIXES = ("B", "KiB", "MiB", "GiB", "TiB", "PiB")

_PARSE_UNITS = {
    "b": 1,
    "k": KIB,
    "kb": KIB,
    "kib": KIB,
    "m": MIB,
    "mb": MIB,
    "mib": MIB,
    "g": GIB,
    "gb": GIB,
    "gib": GIB,
    "t": TIB,
    "tb": TIB,
    "tib": TIB,
}


def format_bytes(n: int | float) -> str:
    """Render a byte count with a binary suffix, e.g. ``format_bytes(4 * MIB)
    == '4.0 MiB'``.

    Negative values are rendered with a leading minus sign.
    """
    sign = "-" if n < 0 else ""
    value = float(abs(n))
    for suffix in _SUFFIXES:
        if value < 1024.0 or suffix == _SUFFIXES[-1]:
            if suffix == "B":
                return f"{sign}{int(value)} B"
            return f"{sign}{value:.1f} {suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def format_duration(seconds: float) -> str:
    """Render a duration compactly: ``'431 ms'``, ``'12.3 s'``, ``'4 m 05 s'``."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1.0:
        return f"{seconds * 1000.0:.0f} ms"
    if seconds < 120.0:
        return f"{seconds:.1f} s"
    minutes, secs = divmod(seconds, 60.0)
    if minutes < 120:
        return f"{int(minutes)} m {secs:02.0f} s"
    hours, minutes = divmod(minutes, 60.0)
    return f"{int(hours)} h {int(minutes):02d} m"


def parse_size(text: str | int) -> int:
    """Parse a human size string (``'4MiB'``, ``'64 KB'``, ``'100'``) to bytes.

    Integers pass through unchanged.  All units are binary (KB == KiB == 1024),
    matching the convention used across the library.
    """
    if isinstance(text, int):
        return text
    stripped = text.strip().lower().replace(" ", "")
    if not stripped:
        raise ConfigError("empty size string")
    digits = ""
    index = 0
    while index < len(stripped) and (stripped[index].isdigit() or stripped[index] == "."):
        digits += stripped[index]
        index += 1
    unit = stripped[index:]
    if not digits:
        raise ConfigError(f"size string has no numeric part: {text!r}")
    if unit and unit not in _PARSE_UNITS:
        raise ConfigError(f"unknown size unit {unit!r} in {text!r}")
    multiplier = _PARSE_UNITS.get(unit, 1)
    return int(float(digits) * multiplier)
