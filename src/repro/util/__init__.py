"""Small shared utilities: units, deterministic RNG, stopwatches."""

from repro.util.units import (
    KIB,
    MIB,
    GIB,
    TIB,
    format_bytes,
    format_duration,
    parse_size,
)
from repro.util.rng import DeterministicRng, derive_seed
from repro.util.timer import Stopwatch

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "TIB",
    "format_bytes",
    "format_duration",
    "parse_size",
    "DeterministicRng",
    "derive_seed",
    "Stopwatch",
]
