"""Wall/CPU stopwatch used to account the Analyze stage of GCCDF.

The paper's GC time breakdown mixes two kinds of cost: I/O stages whose cost
we take from the simulated disk model, and the Analyze stage whose cost is
real CPU work done by the Analyzer/Planner.  :class:`Stopwatch` measures the
latter with ``time.perf_counter``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class Stopwatch:
    """Accumulates elapsed wall-clock seconds across multiple timed regions."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started_at: float | None = None

    def start(self) -> None:
        """Begin a timed region; nested starts are an error."""
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()

    def stop(self) -> float:
        """End the current region, returning its duration in seconds."""
        if self._started_at is None:
            raise RuntimeError("stopwatch not running")
        duration = time.perf_counter() - self._started_at
        self._started_at = None
        self.elapsed += duration
        return duration

    @contextmanager
    def timed(self) -> Iterator["Stopwatch"]:
        """Context manager form: ``with watch.timed(): ...``."""
        self.start()
        try:
            yield self
        finally:
            self.stop()

    def reset(self) -> None:
        """Zero the accumulated time (must not be running)."""
        if self._started_at is not None:
            raise RuntimeError("stopwatch running; stop it before reset")
        self.elapsed = 0.0
