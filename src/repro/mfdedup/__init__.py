"""MFDedup reimplementation (Zou et al., FAST '21) — the paper's
reordering-based comparison baseline.

MFDedup deduplicates each backup **only against its immediate predecessor**
(neighbor-duplicate detection) and keeps chunks in *lifecycle volumes*
``Vol(first, last)`` — chunks alive for exactly the contiguous backup range
``[first, last]``.  Every ingest migrates the still-referenced chunks of the
predecessor's volumes forward, which yields a perfectly sequential layout
(read amplification ≈ 1) and deletion-only GC, at two famous costs the GCCDF
paper leans on: heavy migration I/O (50–80 % of the dataset, Fig. 3) and a
collapse to no-dedup on multi-source streams (Fig. 2b), because the
"previous backup" of a Redis snapshot in MIX is a website snapshot.
"""

from repro.mfdedup.volumes import Volume, VolumeStore
from repro.mfdedup.engine import MFDedupService

__all__ = ["Volume", "VolumeStore", "MFDedupService"]
