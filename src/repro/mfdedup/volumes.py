"""Lifecycle volumes — MFDedup's storage layout.

A volume ``Vol(first, last)`` holds chunks whose live range is exactly the
backups ``first..last`` (a contiguous range, guaranteed by neighbor-only
duplicate detection).  Volumes are append-only while ``last`` is the newest
backup; once a newer backup arrives, still-shared chunks migrate to
``Vol(first, last+1)`` and the remainder freezes until deletion drops it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import StorageError
from repro.faults.journal import IntentJournal
from repro.model import ChunkRef
from repro.simio.disk import DiskModel


@dataclass
class Volume:
    """One lifecycle volume: chunks alive for backups ``first..last``."""

    first: int
    last: int
    chunks: list[ChunkRef] = field(default_factory=list)
    size_bytes: int = 0

    def append(self, ref: ChunkRef) -> None:
        self.chunks.append(ref)
        self.size_bytes += ref.size

    def covers(self, backup_id: int) -> bool:
        """Is ``backup_id`` within this volume's live range?"""
        return self.first <= backup_id <= self.last

    def __repr__(self) -> str:
        return f"Volume({self.first}..{self.last}, {len(self.chunks)} chunks, {self.size_bytes}B)"


class VolumeStore:
    """All live volumes, with I/O charged against the simulated disk."""

    def __init__(self, disk: DiskModel):
        self.disk = disk
        self._volumes: dict[tuple[int, int], Volume] = {}
        #: Cumulative bytes moved between volumes by ingest-time migration.
        self.migrated_bytes = 0
        #: Cumulative bytes dropped by deletion (MFDedup's whole GC).
        self.deleted_bytes = 0
        #: Intent journal (NVRAM model, zero simulated I/O) bracketing
        #: ingest-time migration batches and volume reorgs.
        self.journal = IntentJournal()

    def get(self, first: int, last: int) -> Volume:
        key = (first, last)
        volume = self._volumes.get(key)
        if volume is None:
            raise StorageError(f"volume {first}..{last} not in store")
        return volume

    def get_or_create(self, first: int, last: int) -> Volume:
        key = (first, last)
        volume = self._volumes.get(key)
        if volume is None:
            volume = Volume(first=first, last=last)
            self._volumes[key] = volume
        return volume

    def write_chunk(self, first: int, last: int, ref: ChunkRef) -> None:
        """Append a freshly stored chunk (charges a write)."""
        self.get_or_create(first, last).append(ref)
        self.disk.write(ref.size)

    def migrate(self, source: Volume, destination: Volume, refs: list[ChunkRef]) -> int:
        """Move chunks between volumes; charges read + write (migration I/O).

        Returns the migrated byte count.  The source volume keeps the rest.
        """
        moved = sum(ref.size for ref in refs)
        if moved:
            self.disk.read(moved)
            self.disk.write(moved)
        keep = {id(ref) for ref in refs}
        source.chunks = [ref for ref in source.chunks if id(ref) not in keep]
        source.size_bytes -= moved
        for ref in refs:
            destination.append(ref)
        self.migrated_bytes += moved
        return moved

    def rollback_migrate(
        self,
        source_key: tuple[int, int],
        destination_key: tuple[int, int],
        fps: list[bytes],
    ) -> int:
        """Undo one :meth:`migrate` during crash recovery.

        Moves the chunks named by ``fps`` back from the destination volume
        to the source volume (charging the same read + write the forward
        move cost) and deletes the destination if the rollback empties it.
        Returns the bytes moved back.
        """
        source = self._volumes[tuple(source_key)]
        destination_key = tuple(destination_key)
        destination = self._volumes[destination_key]
        wanted = set(fps)
        moved = [ref for ref in destination.chunks if ref.fp in wanted]
        moved_bytes = sum(ref.size for ref in moved)
        if moved_bytes:
            self.disk.read(moved_bytes)
            self.disk.write(moved_bytes)
        destination.chunks = [ref for ref in destination.chunks if ref.fp not in wanted]
        destination.size_bytes -= moved_bytes
        for ref in moved:
            source.append(ref)
        self.migrated_bytes -= moved_bytes
        if not destination.chunks:
            del self._volumes[destination_key]
        return moved_bytes

    def volumes_ending_at(self, last: int) -> list[Volume]:
        """Volumes whose live range ends exactly at backup ``last``."""
        return [v for (f, l), v in sorted(self._volumes.items()) if l == last]

    def volumes_covering(self, backup_id: int) -> list[Volume]:
        """Volumes overlapping one backup — exactly its restore read set."""
        return [v for (f, l), v in sorted(self._volumes.items()) if f <= backup_id <= l]

    def drop_expired(self, oldest_live: int, limit: int | None = None) -> tuple[int, int]:
        """Delete volumes wholly older than the oldest live backup.

        Returns ``(volumes_dropped, bytes_dropped)``.  This is MFDedup's GC:
        no mark, no sweep, no copying — aggregated invalid data is unlinked.
        ``limit`` bounds one call (incremental GC unlinks in budgeted slices;
        repeated calls converge on the same total set, in the same order).
        """
        expired = [key for key in self._volumes if key[1] < oldest_live]
        if limit is not None:
            expired = expired[:limit]
        dropped_bytes = 0
        for key in expired:
            dropped_bytes += self._volumes[key].size_bytes
            del self._volumes[key]
        self.deleted_bytes += dropped_bytes
        return len(expired), dropped_bytes

    def expired_count(self, oldest_live: int) -> int:
        """Volumes still eligible for :meth:`drop_expired`."""
        return sum(1 for key in self._volumes if key[1] < oldest_live)

    def __len__(self) -> int:
        return len(self._volumes)

    def __iter__(self) -> Iterator[Volume]:
        return iter(self._volumes.values())

    @property
    def stored_bytes(self) -> int:
        return sum(volume.size_bytes for volume in self._volumes.values())
