"""The MFDedup backup service.

Implements the :class:`~repro.backup.service.BackupService` facade over the
volume layout:

* **Ingest** — neighbor-duplicate detection against the immediately
  preceding backup (in global ingest order — the property that makes it
  collapse on multi-source streams); still-shared chunks of the
  predecessor's volumes migrate forward (``Vol(f, n-1) → Vol(f, n)``),
  fresh chunks append to ``Vol(n, n)``.
* **Restore** — read every volume covering the backup, sequentially; by the
  lifecycle invariant every byte read belongs to the backup, so read
  amplification ≈ 1.
* **GC** — deletion only: volumes wholly older than the oldest live backup
  are unlinked.  No mark, no sweep, no produced containers (Fig. 13/14's
  MFDedup accounting divides the deleted bytes by the container size for
  comparability, which :meth:`run_gc` mirrors).
"""

from __future__ import annotations

from array import array

from repro.backup.service import BackupService, ChunkStream, ServiceStats
from repro.config import SystemConfig
from repro.dedup.pipeline import IngestResult
from repro.errors import BackupAlreadyDeletedError
from repro.gc.report import GCReport
from repro.index.columnar import ColumnarRecipe
from repro.index.recipe import AnyRecipe, Recipe, RecipeStore
from repro.mfdedup.volumes import VolumeStore
from repro.model import Chunk, ChunkRef
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.restore.report import RestoreReport
from repro.serve.cache import TieredReadCache
from repro.serve.reader import BackupReader, MFDedupReadStrategy
from repro.simio.disk import DiskModel


class MFDedupService(BackupService):
    """MFDedup: neighbor dedup + lifecycle volumes + deletion-only GC.

    ``columnar`` selects the recipe representation: id/size columns against
    the store's interner (default; the interner here maps 20-byte logical
    fingerprints, not storage keys — MFDedup has no rewriting, so one copy
    per fingerprint) or the legacy tuple of :class:`~repro.model.ChunkRef`.
    """

    name = "mfdedup"

    def __init__(
        self,
        config: SystemConfig | None = None,
        tracer: Tracer | None = None,
        columnar: bool = True,
        gc_mode: str = "stw",
        gc_budget=None,
        read_cache_chunks: int | None = 1024,
    ):
        self.config = config or SystemConfig.scaled()
        self.config.validate()
        self.columnar = columnar
        # Explicit None test: an empty TraceRecorder is falsy (len == 0).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.disk = DiskModel(self.config.disk, tracer=self.tracer)
        self.volumes = VolumeStore(self.disk)
        self.recipes = RecipeStore()
        #: fp → size map of the immediately preceding backup.
        self._previous: dict[bytes, int] = {}
        self._previous_id: int | None = None
        self._cumulative_logical = 0
        self._cumulative_stored = 0
        self._gc_rounds = 0
        if gc_mode not in ("stw", "incremental"):
            raise ValueError(f"unknown gc_mode {gc_mode!r}; choose 'stw' or 'incremental'")
        self.gc_mode = gc_mode
        if gc_mode == "incremental":
            from repro.gc.incremental import IncrementalMFDedupGC

            self.gc = IncrementalMFDedupGC(self, budget=gc_budget)
            self.gc_history = self.gc.history  # one list, shared with the engine
        else:
            self.gc_history: list[GCReport] = []
        self.ingest_history: list[IngestResult] = []
        # Serve-layer cache (chunk tier only — volumes have no containers);
        # lazy so non-serving runs keep their runtime metrics untouched.
        self._read_cache_chunks = read_cache_chunks
        self._read_cache: TieredReadCache | None = None

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------

    def ingest(self, stream: ChunkStream, source: str = "") -> IngestResult:
        backup_id = self.recipes.new_backup_id()
        current: dict[bytes, int] = {}
        columnar = self.columnar
        entries: list[ChunkRef] = []
        ids = array("q")
        sizes = array("q")
        ids_append = ids.append
        sizes_append = sizes.append
        intern = self.recipes.interner.intern
        previous = self._previous
        logical_bytes = 0
        stored_bytes = 0
        dedup_bytes = 0

        with self.disk.phase("ingest") as ph:
            # Classify the stream: neighbor duplicates vs fresh chunks.
            for item in stream:
                ref = item.ref if isinstance(item, Chunk) else item
                fp = ref.fp
                size = ref.size
                logical_bytes += size
                if columnar:
                    ids_append(intern(fp))
                    sizes_append(size)
                else:
                    entries.append(ChunkRef(fp=fp, size=size))
                if fp in current:
                    dedup_bytes += size  # intra-backup duplicate
                    continue
                current[fp] = size
                if fp in previous:
                    dedup_bytes += size  # neighbor duplicate: will migrate
                else:
                    stored_bytes += size

            # Migrate forward the predecessor's still-shared chunks, under
            # one umbrella intent recording every performed move — a crash
            # mid-ingest must roll back *all* of them, because a partially
            # migrated predecessor breaks the next ingest's lifecycle chain
            # (``volumes_ending_at`` would miss chunks moved ahead).
            intent = self.volumes.journal.begin(
                "mfdedup.ingest", backup_id=backup_id, migrates=[]
            )
            migrates: list[dict] = intent.payload["migrates"]
            if self._previous_id is not None:
                for volume in self.volumes.volumes_ending_at(self._previous_id):
                    shared = [ref for ref in volume.chunks if ref.fp in current]
                    if shared:
                        destination = self.volumes.get_or_create(volume.first, backup_id)
                        self.volumes.migrate(volume, destination, shared)
                        migrates.append(
                            {
                                "source": (volume.first, volume.last),
                                "destination": (destination.first, destination.last),
                                "fps": [ref.fp for ref in shared],
                            }
                        )
                        self.disk.crash_point(
                            "mfdedup.migrate",
                            backup_id=backup_id,
                            source_first=volume.first,
                            chunks=len(shared),
                        )

            # Store fresh chunks in Vol(n, n).
            for fp, size in current.items():
                if fp not in self._previous:
                    self.volumes.write_chunk(backup_id, backup_id, ChunkRef(fp=fp, size=size))
            ph.annotate(
                backup_id=backup_id,
                logical_bytes=logical_bytes,
                stored_bytes=stored_bytes,
                dedup_bytes=dedup_bytes,
            )

        recipe: AnyRecipe
        if columnar:
            recipe = ColumnarRecipe(
                backup_id=backup_id,
                interner=self.recipes.interner,
                chunk_ids=ids,
                chunk_sizes=sizes,
                source=source,
            )
        else:
            recipe = Recipe(backup_id=backup_id, entries=tuple(entries), source=source)
        self.recipes.add(recipe)
        self._previous = current
        self._previous_id = backup_id
        self._cumulative_logical += logical_bytes
        self._cumulative_stored += stored_bytes
        # The recipe is durable and every migrated chunk reachable: the
        # ingest intent can be retired.
        self.volumes.journal.commit(intent)
        self.volumes.journal.close(intent)

        result = IngestResult(
            backup_id=backup_id,
            logical_bytes=logical_bytes,
            num_chunks=len(ids) if columnar else len(entries),
            stored_bytes=stored_bytes,
            dedup_bytes=dedup_bytes,
            rewritten_bytes=0,
            containers_written=0,
        )
        self.ingest_history.append(result)
        return result

    # ------------------------------------------------------------------
    # Delete / GC
    # ------------------------------------------------------------------

    def delete_backup(self, backup_id: int) -> None:
        self.recipes.mark_deleted(backup_id)

    def run_gc(self) -> GCReport:
        """Deletion-only GC: drop volumes older than the oldest live backup."""
        if self.gc_mode == "incremental":
            return self.gc.collect()
        with self.disk.phase("gc.purge") as ph:
            purged = self.recipes.purge_deleted()
            live = self.recipes.live_ids()
            oldest_live = live[0] if live else (self._next_unseen_id())
            # The reorg intent pins ``oldest_live`` so recovery can replay
            # ``drop_expired`` idempotently after a crash at the armed
            # ``mfdedup.reorg`` point (recipes already purged, volumes not
            # yet unlinked).
            intent = self.volumes.journal.begin("volume.reorg", oldest_live=oldest_live)
            self.disk.crash_point("mfdedup.reorg", oldest_live=oldest_live)
            volumes_dropped, bytes_dropped = self.volumes.drop_expired(oldest_live)
            # Unlinking a volume is a metadata write (no data copying).
            for _ in range(volumes_dropped):
                self.disk.write(4096)
            self.volumes.journal.commit(intent)
            self.volumes.journal.close(intent)
            ph.annotate(
                backups_purged=len(purged),
                volumes_dropped=volumes_dropped,
                bytes_dropped=bytes_dropped,
                # The Fig. 14 accounting (seek-only metadata unlinks): the
                # phase's io delta also carries the transfer term, so the
                # report quantity must travel explicitly for the trace to
                # reproduce the figure.
                sweep_write_seconds=volumes_dropped * self.config.disk.seek_time,
            )
        # Fig. 13 comparability: express processed bytes in container units.
        container_equivalents = -(-bytes_dropped // self.config.container_size)
        report = GCReport(
            round_index=self._gc_rounds,
            backups_purged=len(purged),
            involved_containers=container_equivalents,
            reclaimed_containers=container_equivalents,
            produced_containers=0,
            migrated_bytes=0,
            reclaimed_bytes=bytes_dropped,
            migrated_chunks=0,
            mark_seconds=0.0,
            analyze_seconds=0.0,
            sweep_read_seconds=0.0,
            sweep_write_seconds=volumes_dropped * self.config.disk.seek_time,
        )
        self._gc_rounds += 1
        self.gc_history.append(report)
        return report

    def _next_unseen_id(self) -> int:
        return (self._previous_id + 1) if self._previous_id is not None else 0

    def recover(self):
        """Repair after a :class:`~repro.errors.SimulatedCrash` by rolling
        the volume store's incomplete journal intents back or forward;
        returns a :class:`~repro.faults.RecoveryReport`."""
        from repro.faults.recovery import recover_mfdedup

        return recover_mfdedup(self.volumes, self.recipes)

    # ------------------------------------------------------------------
    # Restore
    # ------------------------------------------------------------------

    def restore(self, backup_id: int) -> RestoreReport:
        recipe = self.recipes.get(backup_id)
        with self.disk.phase("restore") as ph:
            covering = self.volumes.volumes_covering(backup_id)
            # MFDedup lays covering volumes out adjacently in lifecycle
            # order, so a restore is one sequential scan — charge a single
            # positioned read rather than a seek per volume (which would be
            # a scale artifact of our shrunken geometry).
            total_bytes = sum(volume.size_bytes for volume in covering)
            if covering:
                self.disk.read(total_bytes)
            ph.annotate(backup_id=backup_id, volumes_read=len(covering))
        return RestoreReport(
            backup_id=backup_id,
            logical_bytes=recipe.logical_size,
            num_chunks=recipe.num_chunks,
            containers_read=len(covering),
            container_bytes_read=ph.delta.read_bytes,
            read_seconds=ph.delta.read_seconds,
            cache_hits=0,
        )

    @property
    def read_cache(self) -> TieredReadCache:
        """The shared serve-layer cache (created on first use)."""
        cache = self._read_cache
        if cache is None:
            cache = self._read_cache = TieredReadCache(
                store=None, chunk_capacity=self._read_cache_chunks
            )
        return cache

    def open_backup(self, backup_id: int) -> BackupReader:
        """Open a live backup for random-access reads.

        Point reads resolve against the lifecycle layout: chunks of one
        backup are adjacent in its covering volumes, so each maximal run
        of uncached chunks costs a single positioned read of the run's
        bytes (see :class:`~repro.serve.reader.MFDedupReadStrategy`).
        """
        if self.recipes.is_deleted(backup_id):
            raise BackupAlreadyDeletedError(
                f"backup {backup_id} is deleted and cannot be opened"
            )
        recipe = self.recipes.get(backup_id)
        return BackupReader(
            backup_id=backup_id,
            recipe=recipe,
            strategy=MFDedupReadStrategy(self.disk, self.read_cache),
            disk=self.disk,
            restore=lambda: self.restore(backup_id),
        )

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def live_backup_ids(self) -> list[int]:
        return self.recipes.live_ids()

    def stats(self) -> ServiceStats:
        return ServiceStats(
            cumulative_logical_bytes=self._cumulative_logical,
            cumulative_stored_bytes=self._cumulative_stored,
            physical_bytes=self.volumes.stored_bytes,
        )

    def runtime_metrics(self) -> dict[str, int | float]:
        metrics: dict[str, int | float] = {
            "interner.chunks": len(self.recipes.interner)
        }
        if self._read_cache is not None:
            metrics.update(self._read_cache.counters())
        return metrics

    @property
    def migrated_bytes(self) -> int:
        """Cumulative ingest-time migration I/O (the Fig. 3 quantity)."""
        return self.volumes.migrated_bytes

    @property
    def migration_fraction(self) -> float:
        """Migrated bytes as a fraction of the processed dataset (Fig. 3)."""
        if self._cumulative_logical == 0:
            return 0.0
        return self.volumes.migrated_bytes / self._cumulative_logical
