"""Aggregation over a run's garbage-collection history.

Condenses a list of per-round :class:`~repro.gc.report.GCReport` objects
into the totals the paper's §6.4 discussion works with: container counts,
migrated/reclaimed volume, and the stage time breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.gc.report import GCReport
from repro.util.units import format_bytes, format_duration


@dataclass(frozen=True)
class GCSummary:
    """Totals over a sequence of GC rounds."""

    rounds: int
    backups_purged: int
    involved_containers: int
    reclaimed_containers: int
    produced_containers: int
    migrated_bytes: int
    reclaimed_bytes: int
    mark_seconds: float
    analyze_seconds: float
    sweep_read_seconds: float
    sweep_write_seconds: float

    @property
    def total_seconds(self) -> float:
        return (
            self.mark_seconds
            + self.analyze_seconds
            + self.sweep_read_seconds
            + self.sweep_write_seconds
        )

    def describe(self) -> str:
        return (
            f"{self.rounds} GC rounds: purged {self.backups_purged} backups, "
            f"containers {self.involved_containers}/{self.reclaimed_containers}/"
            f"{self.produced_containers} (involved/reclaimed/produced), "
            f"migrated {format_bytes(self.migrated_bytes)}, "
            f"reclaimed {format_bytes(self.reclaimed_bytes)}, "
            f"time {format_duration(self.total_seconds)}"
        )


def summarize_gc_history(history: list[GCReport]) -> GCSummary:
    """Fold a GC history into one :class:`GCSummary`."""
    return GCSummary(
        rounds=len(history),
        backups_purged=sum(r.backups_purged for r in history),
        involved_containers=sum(r.involved_containers for r in history),
        reclaimed_containers=sum(r.reclaimed_containers for r in history),
        produced_containers=sum(r.produced_containers for r in history),
        migrated_bytes=sum(r.migrated_bytes for r in history),
        reclaimed_bytes=sum(r.reclaimed_bytes for r in history),
        mark_seconds=sum(r.mark_seconds for r in history),
        analyze_seconds=sum(r.analyze_seconds for r in history),
        sweep_read_seconds=sum(r.sweep_read_seconds for r in history),
        sweep_write_seconds=sum(r.sweep_write_seconds for r in history),
    )


def produced_ratio(baseline: GCSummary, other: GCSummary) -> float:
    """``other``'s produced containers as a fraction of ``baseline``'s —
    the Fig. 13 "GCCDF produces ~1/3 of naive" quantity."""
    if baseline.produced_containers == 0:
        return 0.0
    return other.produced_containers / baseline.produced_containers
