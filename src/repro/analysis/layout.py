"""ASCII container-layout rendering for small systems.

Intended for teaching, debugging and example scripts: prints each container
as one line of owner glyphs, making fragmentation visible at a glance.
Chunks are labelled by their ownership group — chunks needed by the same
set of backups share a letter — so an ingest-order layout shows interleaved
letters and a GCCDF-clustered layout shows solid runs.
"""

from __future__ import annotations

from collections import defaultdict

from repro.analysis.ownership import _ownership_map
from repro.backup.system import DedupBackupService

_GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"
#: Glyph for chunks no live backup references (garbage awaiting GC).
_DEAD = "."


def render_layout(service: DedupBackupService, max_containers: int | None = None) -> str:
    """Render the store as one line per container.

    Ownership groups are assigned glyphs in first-seen order; with more
    groups than glyphs, later groups all render as ``#`` (the rendering is
    a lens for small systems, not a serialization).
    """
    owners = _ownership_map(service)
    glyph_of: dict[frozenset[int], str] = {}
    legend: dict[str, frozenset[int]] = {}

    def glyph(ownership: frozenset[int]) -> str:
        if not ownership:
            return _DEAD
        assigned = glyph_of.get(ownership)
        if assigned is None:
            assigned = _GLYPHS[len(glyph_of)] if len(glyph_of) < len(_GLYPHS) else "#"
            glyph_of[ownership] = assigned
            if assigned != "#":
                legend[assigned] = ownership
        return assigned

    lines: list[str] = []
    for position, container in enumerate(service.store.containers()):
        if max_containers is not None and position >= max_containers:
            lines.append(f"… ({len(service.store) - max_containers} more containers)")
            break
        cells = "".join(glyph(owners.get(entry.fp, frozenset())) for entry in container)
        fill = container.utilization
        lines.append(f"container {container.container_id:>4} |{cells}| {fill:4.0%}")

    lines.append("")
    lines.append(f"legend ('{_DEAD}' = unreferenced):")
    for symbol, ownership in legend.items():
        lines.append(f"  {symbol} = backups {sorted(ownership)}")
    return "\n".join(lines)


def ownership_histogram(service: DedupBackupService, width: int = 40) -> str:
    """A bar chart of chunk count per ownership-set size."""
    owners = _ownership_map(service)
    by_size: dict[int, int] = defaultdict(int)
    for ownership in owners.values():
        by_size[len(ownership)] += 1
    if not by_size:
        return "(no referenced chunks)"
    peak = max(by_size.values())
    lines = ["owners  chunks"]
    for size in sorted(by_size):
        count = by_size[size]
        bar = "█" * max(1, round(count / peak * width))
        lines.append(f"{size:>6}  {count:>6} {bar}")
    return "\n".join(lines)
