"""Ownership-structure analytics.

GCCDF's whole premise (§4.1) is that chunks sharing an *ownership* — the
set of live backups referencing them — should be co-located.  These helpers
measure how true that is for a live system:

* :func:`ownership_stats` — the global ownership landscape: distinct
  owner-sets, their size distribution, and chunk lifecycle spread.
* :func:`container_purity` — per container: how many distinct owner-sets
  are mixed inside, and the byte share of the dominant one.  A perfectly
  GCCDF-clustered container has purity 1.0; ingest-order containers decay
  toward the workload's mixing rate.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.backup.system import DedupBackupService
from repro.metrics.series import series_summary


def _ownership_map(service: DedupBackupService) -> dict[bytes, frozenset[int]]:
    """storage key → set of live backups referencing it."""
    owners: dict[bytes, set[int]] = defaultdict(set)
    for recipe in service.recipes.live_recipes():
        for entry in recipe.entries:
            owners[entry.fp].add(recipe.backup_id)
    return {key: frozenset(backups) for key, backups in owners.items()}


@dataclass(frozen=True)
class OwnershipStats:
    """Global ownership landscape of the stored, referenced chunks."""

    total_chunks: int
    distinct_ownerships: int
    #: chunks per distinct owner-set: min/mean/median/max.
    cluster_size_summary: dict[str, float]
    #: |owner-set| per chunk: min/mean/median/max.
    owners_per_chunk_summary: dict[str, float]

    def describe(self) -> str:
        mean_cluster = self.cluster_size_summary["mean"]
        return (
            f"{self.total_chunks} chunks in {self.distinct_ownerships} ownership "
            f"groups (mean {mean_cluster:.1f} chunks/group)"
        )


def ownership_stats(service: DedupBackupService) -> OwnershipStats:
    """Compute the ownership landscape (metadata only)."""
    owners = _ownership_map(service)
    groups: dict[frozenset[int], int] = defaultdict(int)
    for ownership in owners.values():
        groups[ownership] += 1
    return OwnershipStats(
        total_chunks=len(owners),
        distinct_ownerships=len(groups),
        cluster_size_summary=series_summary(sorted(float(v) for v in groups.values())),
        owners_per_chunk_summary=series_summary(
            sorted(float(len(o)) for o in owners.values())
        ),
    )


@dataclass(frozen=True)
class ContainerPurity:
    """Ownership mixing inside one container."""

    container_id: int
    total_bytes: int
    distinct_ownerships: int
    #: Byte share of the largest single owner-set in the container.
    dominant_share: float


def container_purity(service: DedupBackupService) -> list[ContainerPurity]:
    """Per-container ownership purity, ascending container id.

    Chunks referenced by no live backup (pre-GC garbage) count as their own
    "dead" ownership group, since restores never want them.
    """
    owners = _ownership_map(service)
    purities: list[ContainerPurity] = []
    for container in service.store.containers():
        by_group: dict[frozenset[int], int] = defaultdict(int)
        for entry in container.entries:
            by_group[owners.get(entry.fp, frozenset())] += entry.size
        total = sum(by_group.values())
        dominant = max(by_group.values()) if by_group else 0
        purities.append(
            ContainerPurity(
                container_id=container.container_id,
                total_bytes=total,
                distinct_ownerships=len(by_group),
                dominant_share=dominant / total if total else 0.0,
            )
        )
    return purities


def mean_purity(purities: list[ContainerPurity]) -> float:
    """Byte-weighted mean dominant share across containers."""
    total = sum(p.total_bytes for p in purities)
    if not total:
        return 0.0
    return sum(p.dominant_share * p.total_bytes for p in purities) / total
