"""Offline analytics over a live backup system.

The experiment harness measures end-to-end outcomes (read amplification,
GC time).  This package answers the *why* questions underneath them:

* :mod:`repro.analysis.fragmentation` — per-backup fragmentation profiles:
  which containers a restore touches and how well it uses each.
* :mod:`repro.analysis.ownership` — ownership structure of the stored
  chunks: how many distinct owner-sets exist, their size distribution, and
  per-container ownership purity (the quantity GCCDF's clustering drives
  toward 1).
* :mod:`repro.analysis.layout` — compact ASCII renderings of the container
  layout for small systems (debugging and teaching).
* :mod:`repro.analysis.gcstats` — aggregation over a run's GC history.
"""

from repro.analysis.fragmentation import (
    BackupFragmentation,
    fragmentation_profile,
    system_fragmentation,
)
from repro.analysis.ownership import (
    ContainerPurity,
    OwnershipStats,
    container_purity,
    ownership_stats,
)
from repro.analysis.layout import render_layout
from repro.analysis.gcstats import GCSummary, summarize_gc_history

__all__ = [
    "BackupFragmentation",
    "fragmentation_profile",
    "system_fragmentation",
    "ContainerPurity",
    "OwnershipStats",
    "container_purity",
    "ownership_stats",
    "render_layout",
    "GCSummary",
    "summarize_gc_history",
]
