"""Per-backup fragmentation profiling.

For one backup, the profile answers: which containers would a restore touch,
how many bytes does each contribute, and what fraction of each touched
container is actually needed?  These utilizations are exactly what read
amplification aggregates — ``amp = 1 / (bytes-weighted mean utilization)``
under the read-once model — so the profile decomposes a restore's cost
container by container.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backup.system import DedupBackupService
from repro.metrics.series import series_summary


@dataclass(frozen=True)
class ContainerUse:
    """One touched container from a backup's perspective."""

    container_id: int
    container_bytes: int
    needed_bytes: int

    @property
    def utilization(self) -> float:
        """Fraction of this container the restore actually needs."""
        return self.needed_bytes / self.container_bytes if self.container_bytes else 0.0


@dataclass(frozen=True)
class BackupFragmentation:
    """A backup's fragmentation profile."""

    backup_id: int
    logical_bytes: int
    uses: tuple[ContainerUse, ...]

    @property
    def containers_touched(self) -> int:
        return len(self.uses)

    @property
    def read_bytes(self) -> int:
        """Container bytes a read-once restore would fetch."""
        return sum(use.container_bytes for use in self.uses)

    @property
    def read_amplification(self) -> float:
        if self.logical_bytes == 0:
            return 0.0
        return self.read_bytes / self.logical_bytes

    @property
    def mean_utilization(self) -> float:
        if not self.uses:
            return 0.0
        return sum(u.utilization for u in self.uses) / len(self.uses)

    def worst_containers(self, count: int = 5) -> list[ContainerUse]:
        """The most wasteful touched containers (lowest utilization first)."""
        return sorted(self.uses, key=lambda u: (u.utilization, u.container_id))[:count]

    def utilization_summary(self) -> dict[str, float]:
        """min/mean/median/max utilization over touched containers."""
        return series_summary([u.utilization for u in self.uses])


def fragmentation_profile(
    service: DedupBackupService, backup_id: int
) -> BackupFragmentation:
    """Build the profile for one live backup (metadata only — no I/O)."""
    recipe = service.recipes.get(backup_id)
    needed: dict[int, int] = {}
    for entry in recipe.entries:
        placement = service.index.get(entry.fp)
        needed[placement.container_id] = needed.get(placement.container_id, 0) + entry.size
    uses = tuple(
        ContainerUse(
            container_id=container_id,
            container_bytes=service.store.peek(container_id).used_bytes,
            needed_bytes=needed_bytes,
        )
        for container_id, needed_bytes in sorted(needed.items())
    )
    return BackupFragmentation(
        backup_id=backup_id,
        logical_bytes=recipe.logical_size,
        uses=uses,
    )


def system_fragmentation(service: DedupBackupService) -> dict[int, BackupFragmentation]:
    """Profiles for every live backup, keyed by backup id."""
    return {
        backup_id: fragmentation_profile(service, backup_id)
        for backup_id in service.live_backup_ids()
    }
