"""``repro-bench`` — hot-path microbenchmarks: ingest, GC mark, sweep, restore.

Times the per-chunk-occurrence hot loops twice — once on the columnar
engine (interned ids, ``array('q')`` recipes, batched kernels) and once on
the legacy tuple-of-``ChunkRef`` path (``columnar=False``) — over the same
pre-materialised workload, and writes the comparison to
``benchmarks/results/BENCH_hotpath.json``:

* **ingest** — run every backup of the workload through ``service.ingest``
  (duplicate-majority streams; this is where interning pays);
* **mark** — delete the ``turnover`` oldest backups, then run the GC mark
  stage repeatedly (mark is read-only, so repeats measure the same work);
* **sweep** — one full GC cycle (mark + copy-forward sweep + reclaim +
  purge) per repeat, each on a freshly rebuilt service, since a collection
  consumes its own garbage;
* **restore** — restore every live backup through the engine's cache path.

Both representations produce byte-identical accounting (asserted here on
every run — the benchmark doubles as an A/B equivalence check); only wall
time may differ.  The CI ``bench-smoke`` job gates on the ingest and sweep
speedups, and the acceptance bars for the columnar engine at medium scale
are ≥ 2× on combined ingest+mark and ≥ 1.5× on the GC cycle (naive and
gccdf alike).

``--profile`` wraps every timed stage in :mod:`cProfile` and dumps the
top functions by cumulative time to stderr (or ``--profile-out``).
"""

from __future__ import annotations

import argparse
import contextlib
import cProfile
import dataclasses
import io
import json
import pathlib
import pstats
import sys
import time

from repro.backup.approaches import APPROACHES, make_service
from repro.backup.options import ServiceOptions
from repro.backup.driver import BackupSpec
from repro.backup.service import BackupService
from repro.experiments.common import SCALES, get_scale
from repro.gc.mark import MarkStage
from repro.workloads.datasets import DATASET_NAMES, dataset

#: Default location of the written comparison (CI uploads it from here).
DEFAULT_OUT = pathlib.Path("benchmarks/results/BENCH_hotpath.json")

#: Approaches timed by default: the dedup-majority fast path (naive), one
#: rewriting policy exercising the general columnar path (capping), and the
#: paper's piggybacked defragmentation (gccdf) whose analyze/reorg sweep is
#: the heaviest GC cycle.
DEFAULT_APPROACHES = ("naive", "capping", "gccdf")


class StageProfiler:
    """Optional cProfile wrapper around each timed benchmark stage.

    Collects one profile per ``stage(label)`` region; :meth:`dump` writes
    the top-``top`` functions by cumulative time per stage to ``out_path``
    (or stderr).  Profiling adds tracing overhead, so profiled wall times
    are for attribution, not for the reported speedups — run without
    ``--profile`` for clean numbers.
    """

    def __init__(self, top: int = 25, out_path: pathlib.Path | None = None) -> None:
        self.top = top
        self.out_path = out_path
        self._sections: list[tuple[str, str]] = []

    @contextlib.contextmanager
    def stage(self, label: str):
        profile = cProfile.Profile()
        profile.enable()
        try:
            yield
        finally:
            profile.disable()
            buffer = io.StringIO()
            stats = pstats.Stats(profile, stream=buffer)
            stats.sort_stats("cumulative").print_stats(self.top)
            self._sections.append((label, buffer.getvalue()))

    def dump(self) -> None:
        text = "\n".join(
            f"=== {label} ===\n{body}" for label, body in self._sections
        )
        if self.out_path is not None:
            self.out_path.parent.mkdir(parents=True, exist_ok=True)
            self.out_path.write_text(text)
        else:
            sys.stderr.write(text)


class _NullProfiler:
    """No-op stand-in when ``--profile`` is off."""

    @contextlib.contextmanager
    def stage(self, label: str):
        yield

    def dump(self) -> None:
        pass


def _build_service(approach: str, scale, columnar: bool) -> BackupService:
    return make_service(approach, scale.config(), ServiceOptions(columnar=columnar))


def _bench_ingest(
    approach: str, scale, columnar: bool, backups: list[BackupSpec], repeats: int
) -> tuple[float, BackupService]:
    """Best-of-``repeats`` full ingest passes, each on a fresh service.

    Per-pass wall time is ``min`` over repeats — the standard microbench
    estimator, since scheduler noise only ever *adds* time.  The service
    from the last pass (they are all identical) carries the post-ingest
    state forward to the mark/restore benches.
    """
    best = float("inf")
    service: BackupService | None = None
    for _ in range(max(1, repeats)):
        service = _build_service(approach, scale, columnar)
        started = time.perf_counter()
        for spec in backups:
            service.ingest(spec.chunks, source=spec.source)
        best = min(best, time.perf_counter() - started)
    assert service is not None
    return best, service


def _bench_mark(service: BackupService, turnover: int, repeats: int) -> float:
    """Time the mark stage over a realistic deleted/live split.

    Marks run against the service's post-ingest state with the oldest
    ``turnover`` backups logically deleted — the §6.1 shape of a GC round.
    Mark mutates nothing (the simulated clock and probe counters advance,
    which wall time ignores), so repeats time identical work; the reported
    figure is the best single run.
    """
    service.delete_oldest(turnover)
    stage = MarkStage(
        config=service.config,
        index=service.index,
        recipes=service.recipes,
        disk=service.disk,
    )
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        stage.run()
        best = min(best, time.perf_counter() - started)
    return best


def _bench_sweep(
    approach: str, scale, columnar: bool, backups: list[BackupSpec], repeats: int
) -> tuple[float, BackupService]:
    """Best single full GC cycle: mark + copy-forward sweep + reclaim + purge.

    A collection consumes its own garbage, so every repeat rebuilds a fresh
    service, re-ingests the workload and re-deletes the ``turnover`` oldest
    backups *outside* the timed region; the timed region is exactly
    ``service.run_gc()``.  The service from the last repeat (all repeats
    are identical) is returned for the A/B equivalence checks.
    """
    best = float("inf")
    service: BackupService | None = None
    for _ in range(max(1, repeats)):
        service = _build_service(approach, scale, columnar)
        for spec in backups:
            service.ingest(spec.chunks, source=spec.source)
        service.delete_oldest(scale.turnover)
        started = time.perf_counter()
        service.run_gc()
        best = min(best, time.perf_counter() - started)
    assert service is not None
    return best, service


def _gc_report_fields(service: BackupService) -> dict:
    """The last GC round's report as a dict, minus measured interpreter
    wall time (``analyze_cpu_seconds``), which legitimately differs between
    representations — everything else must match exactly."""
    history = getattr(getattr(service, "gc", None), "history", None)
    if not history:
        return {}
    report = dataclasses.asdict(history[-1])
    report.pop("analyze_cpu_seconds", None)
    return report


def _bench_restore(service: BackupService, repeats: int) -> float:
    """Best single pass restoring every live backup (restore is read-only)."""
    live = service.live_backup_ids()
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        for backup_id in live:
            service.restore(backup_id)
        best = min(best, time.perf_counter() - started)
    return best


def _stage(columnar_seconds: float, legacy_seconds: float) -> dict:
    return {
        "columnar_seconds": columnar_seconds,
        "legacy_seconds": legacy_seconds,
        "speedup": legacy_seconds / columnar_seconds if columnar_seconds else 0.0,
    }


def bench_approach(
    approach: str,
    scale,
    backups: list[BackupSpec],
    repeats: int,
    emit=print,
    profiler=None,
) -> dict:
    """Time ingest/mark/sweep/restore on both representations for one
    approach."""
    profiler = profiler or _NullProfiler()
    timings: dict[str, dict[str, float]] = {}
    services: dict[bool, BackupService] = {}
    gc_services: dict[bool, BackupService] = {}
    for columnar in (True, False):
        label = "columnar" if columnar else "legacy"
        with profiler.stage(f"{approach}/{label}/ingest"):
            ingest_seconds, service = _bench_ingest(
                approach, scale, columnar, backups, repeats
            )
        services[columnar] = service
        with profiler.stage(f"{approach}/{label}/mark"):
            mark_seconds = _bench_mark(service, scale.turnover, repeats)
        with profiler.stage(f"{approach}/{label}/sweep"):
            sweep_seconds, gc_service = _bench_sweep(
                approach, scale, columnar, backups, repeats
            )
        gc_services[columnar] = gc_service
        with profiler.stage(f"{approach}/{label}/restore"):
            restore_seconds = _bench_restore(service, repeats)
        timings[label] = {
            "ingest": ingest_seconds,
            "mark": mark_seconds,
            "sweep": sweep_seconds,
            "restore": restore_seconds,
        }
        emit(
            f"  {approach}/{label}: "
            + ", ".join(f"{k} {v:.3f}s" for k, v in timings[label].items())
        )

    # The representations must be indistinguishable in what they computed —
    # the benchmark is only meaningful if both paths did the same work.
    stats_columnar = services[True].stats()
    stats_legacy = services[False].stats()
    if stats_columnar != stats_legacy:
        raise AssertionError(
            f"{approach}: columnar/legacy accounting diverged: "
            f"{stats_columnar} vs {stats_legacy}"
        )
    # Same bar for the post-collection state: service accounting plus the
    # GC round's own report (reclaimed/migrated/produced counts, simulated
    # seconds) must be identical after a full cycle on either path.
    gc_stats_columnar = gc_services[True].stats()
    gc_stats_legacy = gc_services[False].stats()
    if gc_stats_columnar != gc_stats_legacy:
        raise AssertionError(
            f"{approach}: columnar/legacy post-GC accounting diverged: "
            f"{gc_stats_columnar} vs {gc_stats_legacy}"
        )
    report_columnar = _gc_report_fields(gc_services[True])
    report_legacy = _gc_report_fields(gc_services[False])
    if report_columnar != report_legacy:
        raise AssertionError(
            f"{approach}: columnar/legacy GC reports diverged: "
            f"{report_columnar} vs {report_legacy}"
        )

    col, leg = timings["columnar"], timings["legacy"]
    ingest_mark_columnar = col["ingest"] + col["mark"]
    ingest_mark_legacy = leg["ingest"] + leg["mark"]
    return {
        "ingest": _stage(col["ingest"], leg["ingest"]),
        "mark": _stage(col["mark"], leg["mark"]),
        "sweep": _stage(col["sweep"], leg["sweep"]),
        "restore": _stage(col["restore"], leg["restore"]),
        "ingest_mark_speedup": (
            ingest_mark_legacy / ingest_mark_columnar if ingest_mark_columnar else 0.0
        ),
        "gc_cycle_speedup": (
            leg["sweep"] / col["sweep"] if col["sweep"] else 0.0
        ),
    }


def run_bench(
    scale_name: str,
    approaches=DEFAULT_APPROACHES,
    dataset_name: str = "mix",
    repeats: int = 3,
    emit=print,
    profiler=None,
) -> dict:
    scale = get_scale(scale_name)
    # Materialise the workload once, outside every timed region, so stream
    # generation cost (identical for both paths) never pollutes timings.
    backups = list(
        dataset(
            dataset_name,
            scale=scale.workload_scale,
            num_backups=scale.num_backups(dataset_name),
        )
    )[: scale.retained]
    emit(
        f"hotpath bench: scale={scale.name}, dataset={dataset_name}, "
        f"{len(backups)} backups, best of {repeats}"
    )
    results = {
        approach: bench_approach(
            approach, scale, backups, repeats, emit=emit, profiler=profiler
        )
        for approach in approaches
    }
    # The headline acceptance metric is the default-pipeline microbench:
    # the ingest+mark speedup on the decision-free (NullRewriting) path the
    # columnar engine targets — ``naive`` when benched, else the first
    # approach.  Policy-bearing approaches (capping/har/smr) share their
    # per-entry policy cost between both representations, so their ratios
    # are structurally smaller and reported per approach.
    primary = "naive" if "naive" in results else next(iter(results))
    return {
        "scale": scale.name,
        "dataset": dataset_name,
        "backups": len(backups),
        "repeats": repeats,
        "approaches": results,
        "headline": {
            "approach": primary,
            "ingest_mark_speedup": results[primary]["ingest_mark_speedup"],
            "gc_cycle_speedup": results[primary]["gc_cycle_speedup"],
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Hot-path microbenchmarks: columnar engine vs legacy path.",
    )
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="quick", help="experiment scale"
    )
    parser.add_argument(
        "--dataset", choices=DATASET_NAMES, default="mix", help="dataset preset"
    )
    parser.add_argument(
        "--approaches",
        default=",".join(DEFAULT_APPROACHES),
        help="comma-separated approaches to time",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repetitions per stage (best-of)"
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_OUT), help="output JSON path"
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile every timed stage; dump top functions by cumulative "
        "time (profiled wall times are for attribution, not comparison)",
    )
    parser.add_argument(
        "--profile-out",
        default=None,
        metavar="PATH",
        help="write the --profile dump to PATH instead of stderr",
    )
    parser.add_argument(
        "--profile-top",
        type=int,
        default=25,
        metavar="N",
        help="number of functions per stage in the --profile dump",
    )
    args = parser.parse_args(argv)

    approaches = tuple(name.strip() for name in args.approaches.split(",") if name.strip())
    for name in approaches:
        if name not in APPROACHES:
            raise SystemExit(f"unknown approach {name!r}; choose from {APPROACHES}")

    profiler = None
    if args.profile or args.profile_out:
        profiler = StageProfiler(
            top=args.profile_top,
            out_path=pathlib.Path(args.profile_out) if args.profile_out else None,
        )

    payload = run_bench(
        args.scale,
        approaches=approaches,
        dataset_name=args.dataset,
        repeats=args.repeats,
        profiler=profiler,
    )
    if profiler is not None:
        profiler.dump()

    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    for approach, stages in payload["approaches"].items():
        print(
            f"{approach}: ingest ×{stages['ingest']['speedup']:.2f}, "
            f"mark ×{stages['mark']['speedup']:.2f}, "
            f"sweep ×{stages['sweep']['speedup']:.2f}, "
            f"restore ×{stages['restore']['speedup']:.2f}, "
            f"ingest+mark ×{stages['ingest_mark_speedup']:.2f}, "
            f"gc cycle ×{stages['gc_cycle_speedup']:.2f}"
        )
    headline = payload["headline"]
    print(
        f"headline ({headline['approach']}): "
        f"ingest+mark ×{headline['ingest_mark_speedup']:.2f}, "
        f"gc cycle ×{headline['gc_cycle_speedup']:.2f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
