"""``repro-bench`` — hot-path microbenchmarks: ingest, GC mark, restore.

Times the three per-chunk-occurrence hot loops twice — once on the columnar
engine (interned ids, ``array('q')`` recipes, batched kernels) and once on
the legacy tuple-of-``ChunkRef`` path (``columnar=False``) — over the same
pre-materialised workload, and writes the comparison to
``benchmarks/results/BENCH_hotpath.json``:

* **ingest** — run every backup of the workload through ``service.ingest``
  (duplicate-majority streams; this is where interning pays);
* **mark** — delete the ``turnover`` oldest backups, then run the GC mark
  stage repeatedly (mark is read-only, so repeats measure the same work);
* **restore** — restore every live backup through the engine's cache path.

Both representations produce byte-identical accounting (asserted here on
every run — the benchmark doubles as an A/B equivalence check); only wall
time may differ.  The CI ``bench-smoke`` job gates on the ingest speedup
and reports mark/restore, and the acceptance bar for the columnar engine
is ≥ 2× on combined ingest+mark at medium scale.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.backup.approaches import APPROACHES, make_service
from repro.backup.options import ServiceOptions
from repro.backup.driver import BackupSpec
from repro.backup.service import BackupService
from repro.experiments.common import SCALES, get_scale
from repro.gc.mark import MarkStage
from repro.workloads.datasets import DATASET_NAMES, dataset

#: Default location of the written comparison (CI uploads it from here).
DEFAULT_OUT = pathlib.Path("benchmarks/results/BENCH_hotpath.json")

#: Approaches timed by default: the dedup-majority fast path (naive) and
#: one rewriting policy exercising the general columnar path (capping).
DEFAULT_APPROACHES = ("naive", "capping")


def _build_service(approach: str, scale, columnar: bool) -> BackupService:
    return make_service(approach, scale.config(), ServiceOptions(columnar=columnar))


def _bench_ingest(
    approach: str, scale, columnar: bool, backups: list[BackupSpec], repeats: int
) -> tuple[float, BackupService]:
    """Best-of-``repeats`` full ingest passes, each on a fresh service.

    Per-pass wall time is ``min`` over repeats — the standard microbench
    estimator, since scheduler noise only ever *adds* time.  The service
    from the last pass (they are all identical) carries the post-ingest
    state forward to the mark/restore benches.
    """
    best = float("inf")
    service: BackupService | None = None
    for _ in range(max(1, repeats)):
        service = _build_service(approach, scale, columnar)
        started = time.perf_counter()
        for spec in backups:
            service.ingest(spec.chunks, source=spec.source)
        best = min(best, time.perf_counter() - started)
    assert service is not None
    return best, service


def _bench_mark(service: BackupService, turnover: int, repeats: int) -> float:
    """Time the mark stage over a realistic deleted/live split.

    Marks run against the service's post-ingest state with the oldest
    ``turnover`` backups logically deleted — the §6.1 shape of a GC round.
    Mark mutates nothing (the simulated clock and probe counters advance,
    which wall time ignores), so repeats time identical work; the reported
    figure is the best single run.
    """
    service.delete_oldest(turnover)
    stage = MarkStage(
        config=service.config,
        index=service.index,
        recipes=service.recipes,
        disk=service.disk,
    )
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        stage.run()
        best = min(best, time.perf_counter() - started)
    return best


def _bench_restore(service: BackupService, repeats: int) -> float:
    """Best single pass restoring every live backup (restore is read-only)."""
    live = service.live_backup_ids()
    best = float("inf")
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        for backup_id in live:
            service.restore(backup_id)
        best = min(best, time.perf_counter() - started)
    return best


def _stage(columnar_seconds: float, legacy_seconds: float) -> dict:
    return {
        "columnar_seconds": columnar_seconds,
        "legacy_seconds": legacy_seconds,
        "speedup": legacy_seconds / columnar_seconds if columnar_seconds else 0.0,
    }


def bench_approach(
    approach: str,
    scale,
    backups: list[BackupSpec],
    repeats: int,
    emit=print,
) -> dict:
    """Time ingest/mark/restore on both representations for one approach."""
    timings: dict[str, dict[str, float]] = {}
    services: dict[bool, BackupService] = {}
    for columnar in (True, False):
        label = "columnar" if columnar else "legacy"
        ingest_seconds, service = _bench_ingest(
            approach, scale, columnar, backups, repeats
        )
        services[columnar] = service
        timings[label] = {
            "ingest": ingest_seconds,
            "mark": _bench_mark(service, scale.turnover, repeats),
            "restore": _bench_restore(service, repeats),
        }
        emit(
            f"  {approach}/{label}: "
            + ", ".join(f"{k} {v:.3f}s" for k, v in timings[label].items())
        )

    # The representations must be indistinguishable in what they computed —
    # the benchmark is only meaningful if both paths did the same work.
    stats_columnar = services[True].stats()
    stats_legacy = services[False].stats()
    if stats_columnar != stats_legacy:
        raise AssertionError(
            f"{approach}: columnar/legacy accounting diverged: "
            f"{stats_columnar} vs {stats_legacy}"
        )

    col, leg = timings["columnar"], timings["legacy"]
    ingest_mark_columnar = col["ingest"] + col["mark"]
    ingest_mark_legacy = leg["ingest"] + leg["mark"]
    return {
        "ingest": _stage(col["ingest"], leg["ingest"]),
        "mark": _stage(col["mark"], leg["mark"]),
        "restore": _stage(col["restore"], leg["restore"]),
        "ingest_mark_speedup": (
            ingest_mark_legacy / ingest_mark_columnar if ingest_mark_columnar else 0.0
        ),
    }


def run_bench(
    scale_name: str,
    approaches=DEFAULT_APPROACHES,
    dataset_name: str = "mix",
    repeats: int = 3,
    emit=print,
) -> dict:
    scale = get_scale(scale_name)
    # Materialise the workload once, outside every timed region, so stream
    # generation cost (identical for both paths) never pollutes timings.
    backups = list(
        dataset(
            dataset_name,
            scale=scale.workload_scale,
            num_backups=scale.num_backups(dataset_name),
        )
    )[: scale.retained]
    emit(
        f"hotpath bench: scale={scale.name}, dataset={dataset_name}, "
        f"{len(backups)} backups, best of {repeats}"
    )
    results = {
        approach: bench_approach(approach, scale, backups, repeats, emit=emit)
        for approach in approaches
    }
    # The headline acceptance metric is the default-pipeline microbench:
    # the ingest+mark speedup on the decision-free (NullRewriting) path the
    # columnar engine targets — ``naive`` when benched, else the first
    # approach.  Policy-bearing approaches (capping/har/smr) share their
    # per-entry policy cost between both representations, so their ratios
    # are structurally smaller and reported per approach.
    primary = "naive" if "naive" in results else next(iter(results))
    return {
        "scale": scale.name,
        "dataset": dataset_name,
        "backups": len(backups),
        "repeats": repeats,
        "approaches": results,
        "headline": {
            "approach": primary,
            "ingest_mark_speedup": results[primary]["ingest_mark_speedup"],
        },
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Hot-path microbenchmarks: columnar engine vs legacy path.",
    )
    parser.add_argument(
        "--scale", choices=sorted(SCALES), default="quick", help="experiment scale"
    )
    parser.add_argument(
        "--dataset", choices=DATASET_NAMES, default="mix", help="dataset preset"
    )
    parser.add_argument(
        "--approaches",
        default=",".join(DEFAULT_APPROACHES),
        help="comma-separated approaches to time",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repetitions per stage (best-of)"
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_OUT), help="output JSON path"
    )
    args = parser.parse_args(argv)

    approaches = tuple(name.strip() for name in args.approaches.split(",") if name.strip())
    for name in approaches:
        if name not in APPROACHES:
            raise SystemExit(f"unknown approach {name!r}; choose from {APPROACHES}")

    payload = run_bench(
        args.scale,
        approaches=approaches,
        dataset_name=args.dataset,
        repeats=args.repeats,
    )

    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"wrote {out}")
    for approach, stages in payload["approaches"].items():
        print(
            f"{approach}: ingest ×{stages['ingest']['speedup']:.2f}, "
            f"mark ×{stages['mark']['speedup']:.2f}, "
            f"restore ×{stages['restore']['speedup']:.2f}, "
            f"ingest+mark ×{stages['ingest_mark_speedup']:.2f}"
        )
    headline = payload["headline"]
    print(
        f"headline ({headline['approach']}): "
        f"ingest+mark ×{headline['ingest_mark_speedup']:.2f}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
