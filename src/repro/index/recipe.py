"""Backup recipes and their store.

A *recipe* (paper §2.2, step ④) is the ordered list of chunk references that
make up one deduplicated backup image; restoring the backup means resolving
every entry through the fingerprint index and reading the containers.

Deletion is *logical* (paper §2.4): a deleted backup's recipe is retained but
marked dead; physical space comes back only when GC discovers chunks no live
recipe references.  The store therefore tracks three populations — live,
logically deleted (awaiting GC), and purged.
"""

from __future__ import annotations

from array import array
from dataclasses import dataclass, field
from functools import cached_property
from typing import Iterable, Iterator, Union

from repro.errors import BackupAlreadyDeletedError, UnknownBackupError
from repro.index.columnar import ColumnarRecipe
from repro.index.interning import FingerprintInterner
from repro.model import ChunkRef


@dataclass(frozen=True)
class Recipe:
    """One backup's recipe: identity plus its ordered chunk references."""

    backup_id: int
    entries: tuple[ChunkRef, ...]
    #: Which workload source produced this backup (e.g. 'wiki', 'redis-0');
    #: purely informational, used by experiment reports.
    source: str = ""

    @cached_property
    def logical_size(self) -> int:
        """The backup's pre-dedup size in bytes (computed once, cached).

        GC touches every recipe's size each round; entries are immutable,
        so the O(n) sum is paid on first access only.  ``cached_property``
        writes the instance ``__dict__`` directly, which is legal on a
        frozen (non-slots) dataclass.
        """
        return sum(entry.size for entry in self.entries)

    @cached_property
    def chunk_starts(self) -> "array":
        """Exclusive prefix sums of chunk sizes: byte offset where each
        chunk begins in the logical stream (computed once, cached).

        ``chunk_starts[i]`` is the stream offset of chunk ``i``; the read
        serving layer bisects this column to map ``(offset, length)``
        windows onto chunk ranges without walking the recipe.
        """
        starts = array("q", bytes(8 * len(self.entries)))
        offset = 0
        for i, entry in enumerate(self.entries):
            starts[i] = offset
            offset += entry.size
        return starts

    @property
    def num_chunks(self) -> int:
        return len(self.entries)

    def fingerprints(self) -> Iterator[bytes]:
        """Fingerprints in stream order (with duplicates, as stored)."""
        for entry in self.entries:
            yield entry.fp

    def unique_fingerprints(self) -> set[bytes]:
        return {entry.fp for entry in self.entries}


#: Either recipe representation; both expose the same read API.
AnyRecipe = Union[Recipe, ColumnarRecipe]


class RecipeStore:
    """All recipes known to the system, with logical-deletion state.

    The store also owns the service's :class:`FingerprintInterner` — the
    id space every :class:`~repro.index.columnar.ColumnarRecipe` it holds
    is encoded against — and tracks whether the current population is
    homogeneously columnar, which is the precondition for the GC mark
    stage's array-sweep kernel.
    """

    def __init__(self) -> None:
        self._recipes: dict[int, AnyRecipe] = {}
        self._deleted: set[int] = set()
        self._next_id = 0
        self.interner = FingerprintInterner()
        #: Live count of stored recipes in the legacy tuple representation.
        self._tuple_recipes = 0

    def new_backup_id(self) -> int:
        backup_id = self._next_id
        self._next_id += 1
        return backup_id

    def all_columnar(self) -> bool:
        """True when every stored recipe is a :class:`ColumnarRecipe`
        encoded against :attr:`interner` (vacuously true when empty)."""
        return self._tuple_recipes == 0

    def add(self, recipe: AnyRecipe) -> None:
        if recipe.backup_id in self._recipes:
            raise UnknownBackupError(f"backup {recipe.backup_id} already stored")
        self._recipes[recipe.backup_id] = recipe
        if isinstance(recipe, ColumnarRecipe):
            # Pre-warm the distinct-id cache on the ingest path: the GC
            # mark/sweep kernels consume it heavily, and building it here —
            # a sub-permille cost against ingest itself — keeps that
            # first-touch materialisation out of the timed GC cycle.
            recipe.unique_ids()
        else:
            self._tuple_recipes += 1

    def get(self, backup_id: int) -> AnyRecipe:
        recipe = self._recipes.get(backup_id)
        if recipe is None:
            raise UnknownBackupError(f"backup {backup_id} unknown")
        return recipe

    def replace(self, recipe: AnyRecipe) -> None:
        """Swap in a rebuilt recipe for an already-stored backup id.

        Recipes are immutable by convention, so "repointing" a reference
        (the GC rededup pass folding a deferred duplicate onto its
        canonical copy) means building a new recipe object and replacing
        the stored one.  Deletion state is keyed by id and untouched; the
        tuple-representation census is adjusted if the replacement changes
        representation.
        """
        old = self._recipes.get(recipe.backup_id)
        if old is None:
            raise UnknownBackupError(f"backup {recipe.backup_id} unknown")
        self._recipes[recipe.backup_id] = recipe
        if isinstance(old, ColumnarRecipe) != isinstance(recipe, ColumnarRecipe):
            self._tuple_recipes += 1 if isinstance(old, ColumnarRecipe) else -1

    def mark_deleted(self, backup_id: int) -> None:
        """Logically delete a backup (its recipe stays until GC purges it)."""
        if backup_id not in self._recipes:
            raise UnknownBackupError(f"backup {backup_id} unknown")
        if backup_id in self._deleted:
            raise BackupAlreadyDeletedError(f"backup {backup_id} already deleted")
        self._deleted.add(backup_id)

    def is_live(self, backup_id: int) -> bool:
        return backup_id in self._recipes and backup_id not in self._deleted

    def is_deleted(self, backup_id: int) -> bool:
        return backup_id in self._deleted

    def purge_deleted(self, only: Iterable[int] | None = None) -> list[AnyRecipe]:
        """Drop logically deleted recipes (called at the end of GC); returns
        the purged recipes so GC reports can account them.

        ``only`` restricts the purge to a snapshot of backup ids (incremental
        GC purges exactly the population its cycle marked against; backups
        deleted mid-cycle wait for the next one).  Ids no longer deleted are
        skipped, which makes a replayed purge idempotent.
        """
        if only is None:
            targets = sorted(self._deleted)
        else:
            targets = [b for b in sorted(only) if b in self._deleted]
        purged = [self._recipes.pop(backup_id) for backup_id in targets]
        self._deleted.difference_update(targets)
        for recipe in purged:
            if not isinstance(recipe, ColumnarRecipe):
                self._tuple_recipes -= 1
        return purged

    def live_ids(self) -> list[int]:
        """Ids of live backups, ascending (== ingest order)."""
        return sorted(b for b in self._recipes if b not in self._deleted)

    def deleted_ids(self) -> list[int]:
        """Ids of logically deleted, not-yet-purged backups, ascending."""
        return sorted(self._deleted)

    def live_recipes(self) -> Iterator[AnyRecipe]:
        for backup_id in self.live_ids():
            yield self._recipes[backup_id]

    def deleted_recipes(self) -> Iterator[AnyRecipe]:
        for backup_id in self.deleted_ids():
            yield self._recipes[backup_id]

    def __len__(self) -> int:
        """Number of live backups."""
        return len(self._recipes) - len(self._deleted)

    def __contains__(self, backup_id: int) -> bool:
        return self.is_live(backup_id)

    def live_logical_bytes(self) -> int:
        """Sum of live backups' pre-dedup sizes (dedup-ratio numerator)."""
        return sum(recipe.logical_size for recipe in self.live_recipes())

    def referenced_fingerprints(self, backup_ids: Iterable[int]) -> set[bytes]:
        """Union of fingerprints referenced by the given backups."""
        fps: set[bytes] = set()
        for backup_id in backup_ids:
            fps.update(self.get(backup_id).fingerprints())
        return fps
