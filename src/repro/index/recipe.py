"""Backup recipes and their store.

A *recipe* (paper §2.2, step ④) is the ordered list of chunk references that
make up one deduplicated backup image; restoring the backup means resolving
every entry through the fingerprint index and reading the containers.

Deletion is *logical* (paper §2.4): a deleted backup's recipe is retained but
marked dead; physical space comes back only when GC discovers chunks no live
recipe references.  The store therefore tracks three populations — live,
logically deleted (awaiting GC), and purged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.errors import BackupAlreadyDeletedError, UnknownBackupError
from repro.model import ChunkRef


@dataclass(frozen=True)
class Recipe:
    """One backup's recipe: identity plus its ordered chunk references."""

    backup_id: int
    entries: tuple[ChunkRef, ...]
    #: Which workload source produced this backup (e.g. 'wiki', 'redis-0');
    #: purely informational, used by experiment reports.
    source: str = ""

    @property
    def logical_size(self) -> int:
        """The backup's pre-dedup size in bytes."""
        return sum(entry.size for entry in self.entries)

    @property
    def num_chunks(self) -> int:
        return len(self.entries)

    def fingerprints(self) -> Iterator[bytes]:
        """Fingerprints in stream order (with duplicates, as stored)."""
        for entry in self.entries:
            yield entry.fp

    def unique_fingerprints(self) -> set[bytes]:
        return {entry.fp for entry in self.entries}


class RecipeStore:
    """All recipes known to the system, with logical-deletion state."""

    def __init__(self) -> None:
        self._recipes: dict[int, Recipe] = {}
        self._deleted: set[int] = set()
        self._next_id = 0

    def new_backup_id(self) -> int:
        backup_id = self._next_id
        self._next_id += 1
        return backup_id

    def add(self, recipe: Recipe) -> None:
        if recipe.backup_id in self._recipes:
            raise UnknownBackupError(f"backup {recipe.backup_id} already stored")
        self._recipes[recipe.backup_id] = recipe

    def get(self, backup_id: int) -> Recipe:
        recipe = self._recipes.get(backup_id)
        if recipe is None:
            raise UnknownBackupError(f"backup {backup_id} unknown")
        return recipe

    def mark_deleted(self, backup_id: int) -> None:
        """Logically delete a backup (its recipe stays until GC purges it)."""
        if backup_id not in self._recipes:
            raise UnknownBackupError(f"backup {backup_id} unknown")
        if backup_id in self._deleted:
            raise BackupAlreadyDeletedError(f"backup {backup_id} already deleted")
        self._deleted.add(backup_id)

    def is_live(self, backup_id: int) -> bool:
        return backup_id in self._recipes and backup_id not in self._deleted

    def is_deleted(self, backup_id: int) -> bool:
        return backup_id in self._deleted

    def purge_deleted(self) -> list[Recipe]:
        """Drop logically deleted recipes (called at the end of GC); returns
        the purged recipes so GC reports can account them."""
        purged = [self._recipes.pop(backup_id) for backup_id in sorted(self._deleted)]
        self._deleted.clear()
        return purged

    def live_ids(self) -> list[int]:
        """Ids of live backups, ascending (== ingest order)."""
        return sorted(b for b in self._recipes if b not in self._deleted)

    def deleted_ids(self) -> list[int]:
        """Ids of logically deleted, not-yet-purged backups, ascending."""
        return sorted(self._deleted)

    def live_recipes(self) -> Iterator[Recipe]:
        for backup_id in self.live_ids():
            yield self._recipes[backup_id]

    def deleted_recipes(self) -> Iterator[Recipe]:
        for backup_id in self.deleted_ids():
            yield self._recipes[backup_id]

    def __len__(self) -> int:
        """Number of live backups."""
        return len(self._recipes) - len(self._deleted)

    def __contains__(self, backup_id: int) -> bool:
        return self.is_live(backup_id)

    def live_logical_bytes(self) -> int:
        """Sum of live backups' pre-dedup sizes (dedup-ratio numerator)."""
        return sum(recipe.logical_size for recipe in self.live_recipes())

    def referenced_fingerprints(self, backup_ids: Iterable[int]) -> set[bytes]:
        """Union of fingerprints referenced by the given backups."""
        fps: set[bytes] = set()
        for backup_id in backup_ids:
            fps.update(self.get(backup_id).fingerprints())
        return fps
