"""Fingerprint interning: fixed-width byte keys → dense ``int`` chunk ids.

The hot paths of the reproduction touch every chunk *occurrence* — tens of
millions at full scale — and pre-interning each occurrence carried a frozen
:class:`~repro.model.ChunkRef` per entry plus a bytes-keyed dict probe per
structure.  A :class:`FingerprintInterner` assigns each distinct key a dense
integer id once, at first sight; downstream columnar structures
(:class:`~repro.index.columnar.ColumnarRecipe`, the GC mark kernel) then
operate on ``array('q')`` id columns and flat Python lists indexed by id,
where membership and liveness become C-speed ``bytearray`` flag sweeps.

The interner is *process-local and append-only*: ids are never recycled, so
an id minted during ingest stays valid for every later GC round and restore.
It is owned by the :class:`~repro.index.recipe.RecipeStore` (one per backup
service), which fixes the key population a given table describes — storage
keys (24 B) for the container-based services, logical fingerprints (20 B)
for MFDedup.  The width is pinned by the first interned key so the flat
:meth:`fingerprint_table` stays rectangular.
"""

from __future__ import annotations


class FingerprintInterner:
    """Bijective map between fixed-width byte keys and dense ints."""

    __slots__ = ("_ids", "_keys", "_width")

    def __init__(self) -> None:
        self._ids: dict[bytes, int] = {}
        self._keys: list[bytes] = []
        self._width: int | None = None

    def intern(self, key: bytes) -> int:
        """Return the dense id for ``key``, minting one at first sight."""
        chunk_id = self._ids.get(key)
        if chunk_id is None:
            if self._width is None:
                self._width = len(key)
            elif len(key) != self._width:
                raise ValueError(
                    f"interner holds {self._width}-byte keys; got {len(key)} bytes"
                )
            chunk_id = len(self._keys)
            self._keys.append(key)
            self._ids[key] = chunk_id
        return chunk_id

    def id_of(self, key: bytes) -> int | None:
        """The id of an already-interned key, or ``None``."""
        return self._ids.get(key)

    def key_of(self, chunk_id: int) -> bytes:
        """The byte key a dense id stands for."""
        return self._keys[chunk_id]

    def keys(self) -> list[bytes]:
        """The id → key table as a live list (index == id).

        Exposed so batched kernels can bind ``keys.__getitem__`` (or index
        the list directly) instead of paying a method call per chunk.
        Callers must treat the list as read-only.
        """
        return self._keys

    def id_map(self) -> dict[bytes, int]:
        """The live key → id dict, for batched kernels that probe the
        duplicate majority with a bare ``dict.get`` and fall back to
        :meth:`intern` only on first sight.  Callers must treat the dict
        as read-only."""
        return self._ids

    @property
    def width(self) -> int | None:
        """Key width in bytes (``None`` until the first intern)."""
        return self._width

    def fingerprint_table(self) -> bytes:
        """All interned keys as one flat ``bytes`` block, ordered by id.

        Key ``i`` occupies ``table[i * width : (i + 1) * width]`` — the
        compact serialized form of the id space (and what an on-disk recipe
        region would store).
        """
        return b"".join(self._keys)

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, key: bytes) -> bool:
        return key in self._ids
