"""Array-backed recipes over interned chunk ids.

A :class:`ColumnarRecipe` stores one backup's chunk references as two
parallel ``array('q')`` columns — interned chunk ids and sizes — instead of
a ``tuple`` of per-chunk :class:`~repro.model.ChunkRef` objects.  At full
scale a recipe holds tens of thousands of entries and the system holds a
hundred recipes, so the representation matters twice over:

* memory — 16 bytes per entry in two flat buffers versus a ~100-byte
  ``ChunkRef`` (object header, two slots, an interned-elsewhere bytes key);
* speed — the hot loops (ingest dedup accounting, GC mark, restore
  resolution) iterate ints from a C buffer and index flat lists, instead of
  dereferencing an attribute pair per chunk.

The legacy :class:`~repro.index.recipe.Recipe` API is preserved as *views*:
``entries`` is a lazy sequence materialising ``ChunkRef``s on demand (so
verification, analysis, and the rewriting-policy paths run unchanged), and
``fingerprints()`` / ``unique_fingerprints()`` resolve through the
interner's id → key table at C speed.
"""

from __future__ import annotations

from array import array
from typing import Iterable, Iterator

from repro.index.interning import FingerprintInterner
from repro.model import ChunkRef


class RecipeEntriesView:
    """Sequence view over a columnar recipe, yielding ``ChunkRef``s.

    Supports ``len``, iteration, integer indexing, and slicing (a slice
    returns a tuple, matching the legacy ``tuple[ChunkRef, ...]`` shape).
    """

    __slots__ = ("_ids", "_sizes", "_keys")

    def __init__(self, ids: array, sizes: array, keys: list[bytes]):
        self._ids = ids
        self._sizes = sizes
        self._keys = keys

    def __len__(self) -> int:
        return len(self._ids)

    def __iter__(self) -> Iterator[ChunkRef]:
        keys = self._keys
        for chunk_id, size in zip(self._ids, self._sizes):
            yield ChunkRef(fp=keys[chunk_id], size=size)

    def __getitem__(self, index):
        if isinstance(index, slice):
            keys = self._keys
            return tuple(
                ChunkRef(fp=keys[chunk_id], size=size)
                for chunk_id, size in zip(self._ids[index], self._sizes[index])
            )
        return ChunkRef(fp=self._keys[self._ids[index]], size=self._sizes[index])


class ColumnarRecipe:
    """One backup's recipe as parallel id/size columns plus an interner."""

    __slots__ = (
        "backup_id",
        "source",
        "_interner",
        "_ids",
        "_sizes",
        "_logical_size",
        "_unique_ids",
        "_starts",
    )

    def __init__(
        self,
        backup_id: int,
        interner: FingerprintInterner,
        chunk_ids: array | Iterable[int],
        chunk_sizes: array | Iterable[int],
        source: str = "",
    ):
        self.backup_id = backup_id
        self.source = source
        self._interner = interner
        self._ids = chunk_ids if isinstance(chunk_ids, array) else array("q", chunk_ids)
        self._sizes = (
            chunk_sizes if isinstance(chunk_sizes, array) else array("q", chunk_sizes)
        )
        if len(self._ids) != len(self._sizes):
            raise ValueError(
                f"column length mismatch: {len(self._ids)} ids, "
                f"{len(self._sizes)} sizes"
            )
        self._logical_size: int | None = None
        self._unique_ids: frozenset[int] | None = None
        self._starts: array | None = None

    # ------------------------------------------------------------------
    # Columnar surface (the batched kernels read these directly)
    # ------------------------------------------------------------------

    @property
    def interner(self) -> FingerprintInterner:
        return self._interner

    @property
    def chunk_ids(self) -> array:
        """Interned chunk ids in stream order (read-only ``array('q')``)."""
        return self._ids

    @property
    def chunk_sizes(self) -> array:
        """Chunk sizes in stream order (read-only ``array('q')``)."""
        return self._sizes

    # ------------------------------------------------------------------
    # Legacy Recipe API, as views
    # ------------------------------------------------------------------

    @property
    def entries(self) -> RecipeEntriesView:
        return RecipeEntriesView(self._ids, self._sizes, self._interner.keys())

    @property
    def logical_size(self) -> int:
        """The backup's pre-dedup size in bytes (computed once, cached)."""
        size = self._logical_size
        if size is None:
            size = self._logical_size = sum(self._sizes)
        return size

    @property
    def chunk_starts(self) -> array:
        """Exclusive prefix sums of chunk sizes: byte offset where each
        chunk begins in the logical stream (computed once, cached).

        ``chunk_starts[i]`` is the stream offset of chunk ``i``; the read
        serving layer bisects this column to map ``(offset, length)``
        windows onto chunk ranges without walking the recipe.
        """
        starts = self._starts
        if starts is None:
            starts = array("q", bytes(8 * len(self._sizes)))
            offset = 0
            for i, size in enumerate(self._sizes):
                starts[i] = offset
                offset += size
            self._starts = starts
        return starts

    @property
    def num_chunks(self) -> int:
        return len(self._ids)

    def fingerprints(self) -> Iterator[bytes]:
        """Fingerprints in stream order (with duplicates, as stored)."""
        return map(self._interner.keys().__getitem__, self._ids)

    def unique_ids(self) -> frozenset[int]:
        """The recipe's distinct interned chunk ids (computed once, cached).

        Recipes are immutable, and the GC mark stage re-walks every recipe
        each round — caching the collapsed id set turns those re-walks into
        set algebra over prebuilt operands.
        """
        ids = self._unique_ids
        if ids is None:
            ids = self._unique_ids = frozenset(self._ids)
        return ids

    def unique_fingerprints(self) -> set[bytes]:
        keys = self._interner.keys()
        return {keys[chunk_id] for chunk_id in self.unique_ids()}

    def __repr__(self) -> str:
        return (
            f"ColumnarRecipe(backup_id={self.backup_id}, "
            f"num_chunks={len(self._ids)}, source={self.source!r})"
        )
