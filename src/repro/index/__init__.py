"""Metadata: the fingerprint index and backup recipes (paper §2.2)."""

from repro.index.fingerprint_index import FingerprintIndex
from repro.index.recipe import Recipe, RecipeStore

__all__ = ["FingerprintIndex", "Recipe", "RecipeStore"]
