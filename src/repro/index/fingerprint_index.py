"""The fingerprint index: fingerprint → physical placement.

This is the dedup system's central metadata structure: ingest probes it to
detect duplicates, restore resolves each recipe entry through it to a
container, and GC *rewrites* it when migration moves chunks.  That recipes
store only fingerprints while the index owns placements is the design
decision (DESIGN.md §4) that lets GCCDF reorder chunks during GC without
touching a single recipe.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.errors import UnknownChunkError


@dataclass(frozen=True, slots=True)
class Placement:
    """Where a unique chunk currently lives."""

    container_id: int
    size: int


class FingerprintIndex:
    """Mutable map fingerprint → :class:`Placement`."""

    def __init__(self) -> None:
        self._entries: dict[bytes, Placement] = {}
        self.lookups = 0
        self.hits = 0

    def lookup(self, fp: bytes) -> Placement | None:
        """Duplicate-detection probe; counts hit statistics."""
        self.lookups += 1
        placement = self._entries.get(fp)
        if placement is not None:
            self.hits += 1
        return placement

    def get(self, fp: bytes) -> Placement:
        """Resolve a fingerprint that must exist (restore path)."""
        placement = self._entries.get(fp)
        if placement is None:
            raise UnknownChunkError(f"fingerprint {fp.hex()[:10]}… not in index")
        return placement

    def insert(self, fp: bytes, container_id: int, size: int) -> None:
        """Record a newly stored unique chunk."""
        self._entries[fp] = Placement(container_id=container_id, size=size)

    def relocate(self, fp: bytes, container_id: int) -> None:
        """Update placement after GC migrates a chunk."""
        old = self._entries.get(fp)
        if old is None:
            raise UnknownChunkError(f"cannot relocate unknown fingerprint {fp.hex()[:10]}…")
        self._entries[fp] = Placement(container_id=container_id, size=old.size)

    def remove(self, fp: bytes) -> None:
        """Forget an invalid chunk reclaimed by GC."""
        if fp not in self._entries:
            raise UnknownChunkError(f"cannot remove unknown fingerprint {fp.hex()[:10]}…")
        del self._entries[fp]

    def discard(self, fp: bytes) -> None:
        """Forget a chunk if present (idempotent form of :meth:`remove`)."""
        self._entries.pop(fp, None)

    def __contains__(self, fp: bytes) -> bool:
        return fp in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def items(self) -> Iterator[tuple[bytes, Placement]]:
        return iter(self._entries.items())

    @property
    def unique_bytes(self) -> int:
        """Total logical bytes of unique chunks currently indexed."""
        return sum(p.size for p in self._entries.values())

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0
