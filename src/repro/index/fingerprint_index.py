"""The fingerprint index: fingerprint → physical placement.

This is the dedup system's central metadata structure: ingest probes it to
detect duplicates, restore resolves each recipe entry through it to a
container, and GC *rewrites* it when migration moves chunks.  That recipes
store only fingerprints while the index owns placements is the design
decision (DESIGN.md §4) that lets GCCDF reorder chunks during GC without
touching a single recipe.

An optional Bloom filter (``negative_guard=True``) fronts :meth:`lookup` as
a negative-lookup guard, the classic disk-index optimization (Zhu et al.,
FAST '08): a key the filter has never seen is definitely absent, so the
probe short-circuits without touching the placement map.  The guard is
*semantics-free* — Bloom filters have no false negatives, so every lookup
returns exactly what it would return unguarded, and the ``lookups``/``hits``
counters are maintained identically.  :meth:`validate` is the unguarded
variant used by the logical index's staleness checks, whose keys are almost
always present (a guard there would be pure overhead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.errors import UnknownChunkError
from repro.hashing.bloom import BloomFilter

#: Initial negative-guard capacity; the filter rebuilds at 4× whenever the
#: number of inserted keys outgrows it, keeping the false-positive rate
#: (and thus the skip rate) healthy at any index size.
GUARD_INITIAL_CAPACITY = 4096


@dataclass(frozen=True, slots=True)
class Placement:
    """Where a unique chunk currently lives."""

    container_id: int
    size: int


class FingerprintIndex:
    """Mutable map fingerprint → :class:`Placement`."""

    def __init__(self, negative_guard: bool = False) -> None:
        self._entries: dict[bytes, Placement] = {}
        self.lookups = 0
        self.hits = 0
        self._guard: BloomFilter | None = (
            BloomFilter(GUARD_INITIAL_CAPACITY, salt=b"fp-index-guard")
            if negative_guard
            else None
        )
        self._guard_adds = 0
        #: Guarded duplicate-detection probes / probes the guard answered.
        self.guard_probes = 0
        self.guard_skips = 0

    def lookup(self, fp: bytes) -> Placement | None:
        """Duplicate-detection probe; counts hit statistics.

        The *modelled* guarded probe consults the filter first and touches
        the map only when the filter says "maybe present".  The
        implementation inverts that order — map first, filter only on map
        misses — because here the map is an in-memory dict, not a disk
        index: for present keys (the common case) the k-hash filter probe
        is pure simulator overhead.  The inversion is unobservable: the
        returned placement, ``lookups``/``hits``, and the guard counters
        (``guard_probes`` per guarded probe, ``guard_skips`` when the
        filter proves a key absent) are identical either way, because the
        filter has no false negatives and always answers "present" for a
        key that is in the map.
        """
        self.lookups += 1
        placement = self._entries.get(fp)
        if self._guard is not None:
            self.guard_probes += 1
            if placement is None and fp not in self._guard:
                # Never inserted ⇒ definitely absent (no false negatives);
                # the modelled probe skips the map access entirely.
                self.guard_skips += 1
                return None
        if placement is not None:
            self.hits += 1
        return placement

    def lookup_many(self, fps: Sequence[bytes]) -> list["Placement | None"]:
        """Batched duplicate-detection probes: one C-level ``dict.get`` map
        over ``fps`` with the exact counter accounting of ``len(fps)``
        individual :meth:`lookup` calls (``lookups``/``hits`` always;
        ``guard_probes`` per probe and ``guard_skips`` for map-missing keys
        the filter proves absent, when the guard is enabled).  The index is
        not mutated, so batching is unobservable beyond the saved per-call
        overhead.
        """
        results = list(map(self._entries.get, fps))
        probes = len(results)
        self.lookups += probes
        # Truthiness, not ``count(None)``: placements are plain dataclasses,
        # so an equality-based count would dispatch ``__eq__`` per element.
        hits = len(list(filter(None, results)))
        self.hits += hits
        guard = self._guard
        if guard is not None:
            self.guard_probes += probes
            if hits != probes:
                self.guard_skips += sum(
                    1
                    for fp, placement in zip(fps, results)
                    if placement is None and fp not in guard
                )
        return results

    def validate(self, fp: bytes) -> Placement | None:
        """Staleness check for a key expected present; bypasses the guard
        but keeps the same hit statistics as :meth:`lookup`."""
        self.lookups += 1
        placement = self._entries.get(fp)
        if placement is not None:
            self.hits += 1
        return placement

    def get(self, fp: bytes) -> Placement:
        """Resolve a fingerprint that must exist (restore path)."""
        placement = self._entries.get(fp)
        if placement is None:
            raise UnknownChunkError(f"fingerprint {fp.hex()[:10]}… not in index")
        return placement

    def insert(self, fp: bytes, container_id: int, size: int) -> None:
        """Record a newly stored unique chunk."""
        self._entries[fp] = Placement(container_id=container_id, size=size)
        guard = self._guard
        if guard is not None:
            guard.add(fp)
            self._guard_adds += 1
            if self._guard_adds > guard.capacity:
                self._rebuild_guard()

    def _rebuild_guard(self) -> None:
        """Regrow the saturated guard from the current key population.

        Deleted keys drop out of the rebuilt filter; that only *removes*
        false positives — a key absent from ``_entries`` is correctly
        reported absent either way.
        """
        assert self._guard is not None
        guard = BloomFilter(4 * self._guard.capacity, salt=b"fp-index-guard")
        guard.update(self._entries)
        self._guard = guard
        self._guard_adds = len(self._entries)

    @property
    def guard_enabled(self) -> bool:
        return self._guard is not None

    @property
    def guard_skip_rate(self) -> float:
        """Fraction of guarded probes answered without a map access."""
        return self.guard_skips / self.guard_probes if self.guard_probes else 0.0

    def relocate(self, fp: bytes, container_id: int) -> None:
        """Update placement after GC migrates a chunk."""
        old = self._entries.get(fp)
        if old is None:
            raise UnknownChunkError(f"cannot relocate unknown fingerprint {fp.hex()[:10]}…")
        self._entries[fp] = Placement(container_id=container_id, size=old.size)

    def relocate_many(self, fps: Iterable[bytes], container_id: int) -> None:
        """Batched :meth:`relocate` for a sealed copy-forward destination:
        every ``fp`` is repointed at ``container_id``, sizes preserved.
        ``relocate`` keeps no counters, so the batch is observationally
        identical to the per-key loop (including the error on unknown
        fingerprints, re-raised with the same message)."""
        entries = self._entries
        try:
            entries.update(
                [
                    (fp, Placement(container_id=container_id, size=entries[fp].size))
                    for fp in fps
                ]
            )
        except KeyError as exc:
            fp = exc.args[0]
            raise UnknownChunkError(
                f"cannot relocate unknown fingerprint {fp.hex()[:10]}…"
            ) from None

    def remove(self, fp: bytes) -> None:
        """Forget an invalid chunk reclaimed by GC."""
        if fp not in self._entries:
            raise UnknownChunkError(f"cannot remove unknown fingerprint {fp.hex()[:10]}…")
        del self._entries[fp]

    def discard(self, fp: bytes) -> None:
        """Forget a chunk if present (idempotent form of :meth:`remove`)."""
        self._entries.pop(fp, None)

    def __contains__(self, fp: bytes) -> bool:
        return fp in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def items(self) -> Iterator[tuple[bytes, Placement]]:
        return iter(self._entries.items())

    def placements_map(self) -> dict[bytes, Placement]:
        """The live fp → placement dict, for batched kernels that fuse many
        :meth:`validate` probes into one loop (callers must replicate the
        ``lookups``/``hits`` accounting in bulk and never mutate the map)."""
        return self._entries

    @property
    def unique_bytes(self) -> int:
        """Total logical bytes of unique chunks currently indexed."""
        return sum(p.size for p in self._entries.values())

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0
