"""Structured observability: trace events and phase-scoped metrics.

The paper's evaluation (Figs. 11–15) is entirely about *attributing* I/O
and simulated time to phases — mark, analyze, sweep, restore.  This package
makes that attribution first-class instead of ad hoc:

* :class:`Tracer` / :class:`TraceRecorder` — typed span and point events
  (``ingest``, ``gc.mark``, ``gc.analyze``, ``gc.sweep``, ``gc.purge``,
  ``restore``, ``container.read``, ``container.write``) carrying monotonic
  *simulated* time, phase-diffed :class:`~repro.simio.stats.IOStats`
  payloads and counters.  Events are deterministic: same seed + config
  produces a byte-identical stream regardless of worker count or wall
  clock, because nothing wall-clock-derived is ever recorded.
* :class:`NullTracer` — the default everywhere; every instrumentation
  point is guarded by ``tracer.enabled`` so the disabled overhead is a
  single attribute check on container-granular (not chunk-granular)
  operations.
* :class:`MetricsRegistry` — counters and histograms aggregated per run,
  serializable to JSON next to ``benchmarks/results/BENCH_matrix.json``;
  every
  :class:`~repro.backup.driver.RotationResult` carries one as its
  ``metrics`` payload.
* :mod:`repro.obs.report` — rebuilds the Fig. 14 per-stage GC breakdown
  from an emitted trace file alone (``python -m repro.obs.report``).
"""

from repro.obs.metrics import MetricsRegistry, merge_metric_payloads, rotation_metrics
from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    TraceEvent,
    Tracer,
    TraceRecorder,
    read_trace,
    write_trace,
)

__all__ = [
    "MetricsRegistry",
    "merge_metric_payloads",
    "NULL_TRACER",
    "NullTracer",
    "TraceEvent",
    "Tracer",
    "TraceRecorder",
    "read_trace",
    "rotation_metrics",
    "write_trace",
]
