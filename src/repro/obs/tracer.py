"""Typed trace events and the tracers that emit them.

Every instrumented component in the library routes its events through a
:class:`Tracer`.  The default is :data:`NULL_TRACER`, whose ``enabled``
flag is ``False`` — instrumentation sites guard on that flag, so a run
without tracing pays one attribute check per *container-granular*
operation and allocates nothing.

Events are **deterministic by construction**: they carry monotonic
simulated seconds (from the :class:`~repro.simio.disk.DiskModel`), counter
payloads, and phase-diffed :class:`~repro.simio.stats.IOStats` — never
wall-clock time, memory addresses, or anything else that varies between
identical runs.  That is what lets a ``--jobs 4`` matrix merge worker
traces into a byte-identical file to a ``--jobs 1`` run.

The on-disk format is JSON Lines: one event per line, keys sorted,
compact separators.  :func:`write_trace` / :func:`read_trace` are the only
serialization points, so the byte-level guarantee lives in one place.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

#: Span names used by the built-in instrumentation (one place to grep).
SPAN_NAMES = (
    "ingest",
    "gc.mark",
    "gc.analyze",
    "gc.sweep",
    "gc.purge",
    "restore",
    "recovery",
)

#: Point-event names emitted by the storage layer.
POINT_NAMES = (
    "container.read",
    "container.write",
    "container.delete",
    "cache.evict",
    "gc.reclaim",
    "gc.segment",
    "recovery.rollback",
    "recovery.replay",
)


@dataclass(frozen=True)
class TraceEvent:
    """One structured event: a span (``duration > 0`` possible) or a point.

    ``sim_time`` is the simulated-seconds reading of the emitting device at
    the *start* of the span (for point events, at the instant of emission);
    ``duration`` is the span's simulated seconds; ``io`` is the span's
    phase-diffed I/O counters (``IOStats.to_dict()``), ``None`` for point
    events; ``fields`` holds event-specific counters.
    """

    seq: int
    name: str
    sim_time: float
    duration: float = 0.0
    io: dict | None = None
    fields: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain-scalar dict; round-trips exactly through JSON."""
        data: dict = {
            "seq": self.seq,
            "name": self.name,
            "sim_time": self.sim_time,
            "duration": self.duration,
            "fields": dict(self.fields),
        }
        if self.io is not None:
            data["io"] = dict(self.io)
        return data

    @classmethod
    def from_dict(cls, data: Mapping) -> "TraceEvent":
        return cls(
            seq=data["seq"],
            name=data["name"],
            sim_time=data["sim_time"],
            duration=data.get("duration", 0.0),
            io=dict(data["io"]) if data.get("io") is not None else None,
            fields=dict(data.get("fields", {})),
        )


class Tracer:
    """The tracer interface (and a convenient no-op-free base).

    Instrumentation sites call :meth:`emit` only after checking
    :attr:`enabled`, so subclasses never see events they did not ask for::

        if tracer.enabled:
            tracer.emit("container.read", sim_time=t, fields={"bytes": n})
    """

    #: Whether instrumentation sites should emit at all.  The null tracer
    #: sets this ``False``; everything hot checks it and nothing more.
    enabled: bool = True

    def emit(
        self,
        name: str,
        sim_time: float,
        duration: float = 0.0,
        io: dict | None = None,
        fields: dict | None = None,
    ) -> None:
        """Record one event.  Subclasses decide what 'record' means."""
        raise NotImplementedError


class NullTracer(Tracer):
    """The default tracer: disabled, allocation-free, and silent.

    ``emit`` is still safe to call (it does nothing), so code that has
    already paid for its payload may emit unconditionally; hot paths should
    guard on :attr:`enabled` instead.
    """

    enabled = False

    def emit(
        self,
        name: str,
        sim_time: float,
        duration: float = 0.0,
        io: dict | None = None,
        fields: dict | None = None,
    ) -> None:
        return None


#: Shared disabled tracer; components default to this instance so the
#: "is tracing on?" check never needs a None test.
NULL_TRACER = NullTracer()


class TraceRecorder(Tracer):
    """Collects events in memory, in emission order, with dense sequence ids.

    Optionally feeds a :class:`~repro.obs.metrics.MetricsRegistry` as events
    arrive: every event counts ``events.<name>``; spans additionally observe
    their simulated duration in the ``span_seconds.<name>`` histogram.
    """

    enabled = True

    def __init__(self, metrics: "MetricsRegistry | None" = None):
        self.events: list[TraceEvent] = []
        self.metrics = metrics

    def emit(
        self,
        name: str,
        sim_time: float,
        duration: float = 0.0,
        io: dict | None = None,
        fields: dict | None = None,
    ) -> None:
        event = TraceEvent(
            seq=len(self.events),
            name=name,
            sim_time=sim_time,
            duration=duration,
            io=io,
            fields=dict(fields) if fields else {},
        )
        self.events.append(event)
        if self.metrics is not None:
            self.metrics.count(f"events.{name}")
            if io is not None:
                self.metrics.observe(f"span_seconds.{name}", duration)

    def __len__(self) -> int:
        return len(self.events)

    def to_dicts(self) -> list[dict]:
        """Events as plain dicts (what workers ship across the pool)."""
        return [event.to_dict() for event in self.events]


def event_line(data: Mapping) -> str:
    """Canonical single-line JSON for one event dict (byte-deterministic)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"))


def write_trace(path: str | os.PathLike, events: Iterable[Mapping]) -> int:
    """Write events as JSON Lines; returns the number written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for data in events:
            fh.write(event_line(data))
            fh.write("\n")
            count += 1
    return count


def read_trace(path: str | os.PathLike) -> Iterator[dict]:
    """Yield event dicts from a JSON Lines trace file."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield json.loads(line)
