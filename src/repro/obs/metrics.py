"""Phase-scoped counters and histograms, aggregated per run.

:class:`MetricsRegistry` is a deliberately small aggregator: named counters
(ints or floats) and fixed-memory histograms (count/sum/min/max).  Both are
deterministic, mergeable, and serialize to plain JSON — the three
properties the experiment harness needs to carry metrics through the
persistent run cache and across pool workers.

:func:`rotation_metrics` distils one protocol run's reports into a
registry: per-phase simulated seconds (the Fig. 14 currency), byte and
container counters per pipeline stage, and per-backup restore histograms
(the Fig. 12 distribution).  It is a pure function of the run's reports,
so cached results rebuild byte-identical payloads.
"""

from __future__ import annotations

from typing import Mapping


class MetricsRegistry:
    """Named counters + histograms with deterministic JSON serialization."""

    def __init__(self) -> None:
        self._counters: dict[str, int | float] = {}
        self._histograms: dict[str, dict[str, float]] = {}

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------

    def count(self, name: str, value: int | float = 1) -> None:
        """Add ``value`` to counter ``name`` (creating it at zero)."""
        self._counters[name] = self._counters.get(name, 0) + value

    def observe(self, name: str, value: int | float) -> None:
        """Record one observation into histogram ``name``."""
        hist = self._histograms.get(name)
        if hist is None:
            self._histograms[name] = {
                "count": 1,
                "sum": value,
                "min": value,
                "max": value,
            }
            return
        hist["count"] += 1
        hist["sum"] += value
        if value < hist["min"]:
            hist["min"] = value
        if value > hist["max"]:
            hist["max"] = value

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------

    def counter(self, name: str) -> int | float:
        """Current value of a counter (0 if never touched)."""
        return self._counters.get(name, 0)

    def histogram(self, name: str) -> dict[str, float] | None:
        """Snapshot of one histogram (count/sum/min/max), or ``None``."""
        hist = self._histograms.get(name)
        return dict(hist) if hist is not None else None

    def mean(self, name: str) -> float:
        """Mean of a histogram's observations (0.0 when empty/absent)."""
        hist = self._histograms.get(name)
        if not hist or not hist["count"]:
            return 0.0
        return hist["sum"] / hist["count"]

    def __len__(self) -> int:
        return len(self._counters) + len(self._histograms)

    # ------------------------------------------------------------------
    # Merge / serialize
    # ------------------------------------------------------------------

    def merge(self, other: "MetricsRegistry | Mapping") -> None:
        """Fold another registry (or its ``to_dict`` form) into this one."""
        data = other.to_dict() if isinstance(other, MetricsRegistry) else other
        for name, value in data.get("counters", {}).items():
            self.count(name, value)
        for name, hist in data.get("histograms", {}).items():
            mine = self._histograms.get(name)
            if mine is None:
                self._histograms[name] = dict(hist)
                continue
            mine["count"] += hist["count"]
            mine["sum"] += hist["sum"]
            mine["min"] = min(mine["min"], hist["min"])
            mine["max"] = max(mine["max"], hist["max"])

    def to_dict(self) -> dict:
        """Sorted plain-data form; round-trips exactly through JSON."""
        return {
            "counters": {k: self._counters[k] for k in sorted(self._counters)},
            "histograms": {
                k: dict(self._histograms[k]) for k in sorted(self._histograms)
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "MetricsRegistry":
        registry = cls()
        registry.merge(data)
        return registry


def rotation_metrics(result, stats=None, runtime=None) -> dict:
    """Aggregate one protocol run into a metrics payload.

    ``result`` is a :class:`~repro.backup.driver.RotationResult` (typed
    loosely to keep this package dependency-free); ``stats`` an optional
    :class:`~repro.backup.service.ServiceStats` whose whole-run accounting
    lands under ``service.*`` counters; ``runtime`` an optional flat
    mapping of hot-path execution counters (index probes, Bloom-guard skip
    rate — see ``BackupService.runtime_metrics``) recorded under
    ``runtime.*``.  Returns ``MetricsRegistry.to_dict()`` form, ready to
    store on the result and in the run cache.
    """
    registry = MetricsRegistry()

    for report in result.ingest_reports:
        registry.count("ingest.backups")
        registry.count("ingest.logical_bytes", report.logical_bytes)
        registry.count("ingest.stored_bytes", report.stored_bytes)
        registry.count("ingest.dedup_bytes", report.dedup_bytes)
        registry.count("ingest.rewritten_bytes", report.rewritten_bytes)
        registry.count("ingest.containers_written", report.containers_written)
        registry.observe("ingest.backup_stored_bytes", report.stored_bytes)

    for report in result.gc_reports:
        registry.count("gc.rounds")
        registry.count("gc.backups_purged", report.backups_purged)
        registry.count("gc.containers_involved", report.involved_containers)
        registry.count("gc.containers_reclaimed", report.reclaimed_containers)
        registry.count("gc.containers_produced", report.produced_containers)
        registry.count("gc.migrated_bytes", report.migrated_bytes)
        registry.count("gc.migrated_chunks", report.migrated_chunks)
        registry.count("gc.reclaimed_bytes", report.reclaimed_bytes)
        registry.count("phase_seconds.gc.mark", report.mark_seconds)
        registry.count("phase_seconds.gc.analyze", report.analyze_seconds)
        registry.count("phase_seconds.gc.sweep_read", report.sweep_read_seconds)
        registry.count("phase_seconds.gc.sweep_write", report.sweep_write_seconds)
        registry.observe("gc.round_seconds", report.total_seconds)

    for report in result.restore_reports:
        registry.count("restore.backups")
        registry.count("restore.containers_read", report.containers_read)
        registry.count("restore.container_bytes_read", report.container_bytes_read)
        registry.count("restore.logical_bytes", report.logical_bytes)
        registry.count("restore.cache_hits", report.cache_hits)
        registry.count("phase_seconds.restore", report.read_seconds)
        registry.observe("restore.read_amplification", report.read_amplification)
        registry.observe("restore.backup_seconds", report.read_seconds)

    if stats is not None:
        registry.count("service.cumulative_logical_bytes", stats.cumulative_logical_bytes)
        registry.count("service.cumulative_stored_bytes", stats.cumulative_stored_bytes)
        registry.count("service.physical_bytes", stats.physical_bytes)
        registry.count("service.dedup_ratio", stats.dedup_ratio)

    if runtime:
        for name in sorted(runtime):
            registry.count(f"runtime.{name}", runtime[name])

    return registry.to_dict()


def merge_metric_payloads(payloads) -> dict:
    """Fold many ``MetricsRegistry.to_dict()`` payloads into one.

    Counters sum, histograms combine (count/sum/min/max compose), and the
    result is in sorted ``to_dict`` form — so merging is associative and
    deterministic in any order.  The fleet runner uses this to roll
    per-shard metrics up into the fleet-wide payload.
    """
    registry = MetricsRegistry()
    for payload in payloads:
        registry.merge(payload)
    return registry.to_dict()
