"""Rebuild the Fig. 14 GC breakdown from an emitted trace file alone.

A merged matrix trace (``repro-experiments --trace runs.jsonl``) contains,
per protocol cell, the full span stream the instrumented pipeline emitted:
``gc.mark`` and ``gc.analyze`` spans carry their simulated duration, and
the ``gc.sweep`` span carries its phase-diffed I/O payload, whose
``read_seconds``/``write_seconds`` split is exactly the sweep-read /
sweep-write distinction of the paper's Fig. 14.  This module re-derives the
per-stage, per-approach, per-dataset breakdown *from the trace only* — no
run cache, no figure memo — which is the acceptance check that the trace
stream is a faithful record of the run.

Usage::

    python -m repro.obs.report runs.jsonl
"""

from __future__ import annotations

import argparse
import os
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.metrics.table import Column, ResultTable
from repro.obs.tracer import read_trace


@dataclass
class StageTotals:
    """Summed simulated seconds per GC stage for one protocol cell."""

    mark: float = 0.0
    analyze: float = 0.0
    sweep_read: float = 0.0
    sweep_write: float = 0.0
    rounds: int = 0

    @property
    def total(self) -> float:
        return self.mark + self.analyze + self.sweep_read + self.sweep_write


@dataclass
class CellTrace:
    """One cell's identity and accumulated stage totals."""

    label: str
    approach: str
    dataset: str
    scale: str
    alias_of: str | None = None
    stages: StageTotals = field(default_factory=StageTotals)


def collect_cells(events: Iterable[Mapping]) -> list[CellTrace]:
    """Fold a merged trace's events into per-cell stage totals.

    ``cell`` header events delimit cells; config-dedup aliases (cells whose
    resolved configs shared one run) carry ``alias_of`` and inherit the
    representative's totals at resolution time.
    """
    cells: list[CellTrace] = []
    current: CellTrace | None = None
    for event in events:
        name = event["name"]
        if name == "cell":
            fields = event.get("fields", {})
            current = CellTrace(
                label=fields["label"],
                approach=fields["approach"],
                dataset=fields["dataset"],
                scale=fields["scale"],
                alias_of=fields.get("alias_of"),
            )
            cells.append(current)
            continue
        if current is None:
            continue
        stages = current.stages
        if name == "gc.mark":
            stages.mark += event["duration"]
            stages.rounds += 1
        elif name == "gc.analyze":
            stages.analyze += event["duration"]
        elif name == "gc.sweep":
            io = event.get("io") or {}
            stages.sweep_read += io.get("read_seconds", 0.0)
            stages.sweep_write += io.get("write_seconds", 0.0)
        elif name == "gc.purge":
            # MFDedup's deletion-only GC annotates its Fig. 14 sweep-write
            # accounting (seek-only metadata unlinks) on the purge span.
            # Container-based GC emits ``gc.purge`` as a plain point event,
            # so this adds nothing there.
            stages.sweep_write += event.get("fields", {}).get("sweep_write_seconds", 0.0)

    by_label = {cell.label: cell for cell in cells}
    for cell in cells:
        if cell.alias_of is not None and cell.alias_of in by_label:
            cell.stages = by_label[cell.alias_of].stages
    return cells


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.1f}"


def gc_breakdown(events: Iterable[Mapping]) -> str:
    """Render the per-stage GC time breakdown tables from trace events.

    Mirrors the Fig. 14 table shape (mark / analyze / sweep-read /
    sweep-write / total, in ms, summed over GC rounds), one block per
    dataset, approaches in first-seen order.  The measured-CPU column of
    the live figure is intentionally absent: wall-clock never enters the
    trace, so it cannot come back out.
    """
    cells = collect_cells(events)
    datasets: list[str] = []
    approaches: list[str] = []
    by_key: dict[tuple[str, str], CellTrace] = {}
    scale = cells[0].scale if cells else "?"
    for cell in cells:
        if cell.dataset not in datasets:
            datasets.append(cell.dataset)
        if cell.approach not in approaches:
            approaches.append(cell.approach)
        # Plain cells only: override cells (fig15/ablations) have the same
        # (approach, dataset) key and would double-count stages.
        by_key.setdefault((cell.approach, cell.dataset), cell)

    blocks = []
    for dataset in datasets:
        table = ResultTable(
            title=(
                f"GC time breakdown from trace (ms, summed over rounds), "
                f"{dataset.upper()} (scale={scale})"
            ),
            columns=[
                Column("approach", align="<"),
                Column("mark", format=_ms),
                Column("analyze", format=_ms),
                Column("sweep-read", format=_ms),
                Column("sweep-write", format=_ms),
                Column("total", format=_ms),
            ],
        )
        for approach in approaches:
            cell = by_key.get((approach, dataset))
            if cell is None:
                continue
            stages = cell.stages
            table.add_row(
                approach,
                stages.mark,
                stages.analyze,
                stages.sweep_read,
                stages.sweep_write,
                stages.total,
            )
        blocks.append(table.render())
    return "\n\n".join(blocks)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Rebuild the Fig. 14 GC breakdown from a trace file.",
    )
    parser.add_argument("trace", help="merged JSONL trace (repro-experiments --trace)")
    args = parser.parse_args(argv)
    if not os.path.isfile(args.trace):
        parser.error(f"no such trace file: {args.trace}")
    print(gc_breakdown(read_trace(args.trace)))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
