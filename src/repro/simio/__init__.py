"""Simulated storage I/O: cost model and counters.

This package stands in for the paper's physical testbed (see DESIGN.md §1).
Every container read/write in the library is routed through a
:class:`DiskModel`, which charges simulated seconds and updates
:class:`IOStats`; restoration speed and GC I/O time are then computed from
the accumulated simulated time, exactly as the paper computes them from
wall-clock time on real SSDs.
"""

from repro.simio.disk import DiskModel, PhaseScope
from repro.simio.stats import IOStats

__all__ = ["DiskModel", "IOStats", "PhaseScope"]
