"""I/O accounting counters.

:class:`IOStats` is a plain accumulator: reads/writes, bytes moved, and the
simulated seconds those operations cost under the :class:`~repro.simio.disk.
DiskModel`.  Components snapshot and diff these counters to attribute I/O to
phases (restore, sweep-read, sweep-write, ...).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class IOStats:
    """Mutable counters for one device (or one phase, when diffed)."""

    read_ops: int = 0
    read_bytes: int = 0
    write_ops: int = 0
    write_bytes: int = 0
    read_seconds: float = 0.0
    write_seconds: float = 0.0

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    @property
    def total_seconds(self) -> float:
        return self.read_seconds + self.write_seconds

    def snapshot(self) -> "IOStats":
        """An immutable-by-convention copy of the current counters."""
        return IOStats(
            read_ops=self.read_ops,
            read_bytes=self.read_bytes,
            write_ops=self.write_ops,
            write_bytes=self.write_bytes,
            read_seconds=self.read_seconds,
            write_seconds=self.write_seconds,
        )

    def since(self, earlier: "IOStats") -> "IOStats":
        """Counters accumulated after ``earlier`` was snapshotted."""
        return IOStats(
            read_ops=self.read_ops - earlier.read_ops,
            read_bytes=self.read_bytes - earlier.read_bytes,
            write_ops=self.write_ops - earlier.write_ops,
            write_bytes=self.write_bytes - earlier.write_bytes,
            read_seconds=self.read_seconds - earlier.read_seconds,
            write_seconds=self.write_seconds - earlier.write_seconds,
        )

    def merge(self, other: "IOStats") -> None:
        """Add another accumulator's counters into this one."""
        self.read_ops += other.read_ops
        self.read_bytes += other.read_bytes
        self.write_ops += other.write_ops
        self.write_bytes += other.write_bytes
        self.read_seconds += other.read_seconds
        self.write_seconds += other.write_seconds
