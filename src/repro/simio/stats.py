"""I/O accounting counters.

:class:`IOStats` is a plain accumulator: reads/writes, bytes moved, and the
simulated seconds those operations cost under the :class:`~repro.simio.disk.
DiskModel`.  Phase attribution uses :meth:`IOStats.diff` — preferably via
the :meth:`repro.simio.disk.DiskModel.phase` context manager, which
snapshots and diffs for you (and reports the phase to the attached tracer).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class IOStats:
    """Mutable counters for one device (or one phase, when diffed)."""

    read_ops: int = 0
    read_bytes: int = 0
    write_ops: int = 0
    write_bytes: int = 0
    read_seconds: float = 0.0
    write_seconds: float = 0.0

    @property
    def total_bytes(self) -> int:
        return self.read_bytes + self.write_bytes

    @property
    def total_seconds(self) -> float:
        return self.read_seconds + self.write_seconds

    def snapshot(self) -> "IOStats":
        """An immutable-by-convention copy of the current counters."""
        return IOStats(
            read_ops=self.read_ops,
            read_bytes=self.read_bytes,
            write_ops=self.write_ops,
            write_bytes=self.write_bytes,
            read_seconds=self.read_seconds,
            write_seconds=self.write_seconds,
        )

    def diff(self, other: "IOStats") -> "IOStats":
        """Counters accumulated since ``other`` was snapshotted.

        The primitive behind phase attribution.  Prefer
        :meth:`repro.simio.disk.DiskModel.phase` over calling this by hand —
        the context manager owns the snapshot pairing and emits the phase to
        the tracer.
        """
        return IOStats(
            read_ops=self.read_ops - other.read_ops,
            read_bytes=self.read_bytes - other.read_bytes,
            write_ops=self.write_ops - other.write_ops,
            write_bytes=self.write_bytes - other.write_bytes,
            read_seconds=self.read_seconds - other.read_seconds,
            write_seconds=self.write_seconds - other.write_seconds,
        )

    def merge(self, other: "IOStats") -> None:
        """Add another accumulator's counters into this one."""
        self.read_ops += other.read_ops
        self.read_bytes += other.read_bytes
        self.write_ops += other.write_ops
        self.write_bytes += other.write_bytes
        self.read_seconds += other.read_seconds
        self.write_seconds += other.write_seconds

    def to_dict(self) -> dict:
        """Plain-scalar dict (trace-event ``io`` payloads, JSON-exact)."""
        return {
            "read_ops": self.read_ops,
            "read_bytes": self.read_bytes,
            "write_ops": self.write_ops,
            "write_bytes": self.write_bytes,
            "read_seconds": self.read_seconds,
            "write_seconds": self.write_seconds,
        }
