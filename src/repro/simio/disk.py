"""The simulated disk cost model.

The model is deliberately simple — each I/O costs one positioning latency
plus transfer time at sequential bandwidth:

    cost(op of n bytes) = seek_time + n / bandwidth

This is the standard first-order model for container-granularity backup
storage: because containers are large (MiBs) and immutable, real systems are
dominated by *how many containers* are touched and *how many bytes* cross the
bus, which is precisely what the model charges for.  Restoration speed,
sweep-read and sweep-write time in the experiments are all derived from
simulated seconds accumulated here, which preserves the paper's comparisons
(every approach pays under the same tariff) without real hardware.

Phase attribution goes through :meth:`DiskModel.phase`: the context manager
snapshots the counters on entry, exposes the diffed delta on exit, and —
when a :class:`~repro.obs.tracer.Tracer` is attached — emits one span event
per phase with the delta as its I/O payload.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import DiskConfig
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.simio.stats import IOStats

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults → errors only)
    from repro.faults.plan import FaultPlan


class PhaseScope:
    """One phase of I/O accounting on a :class:`DiskModel`.

    Usable only as a context manager; after the ``with`` block exits,
    :attr:`delta` holds the phase's :class:`IOStats` and the span event has
    been emitted (if the disk's tracer is enabled).  :meth:`annotate` adds
    counter fields to the event from inside the block::

        with disk.phase("restore") as ph:
            ...
            ph.annotate(backup_id=backup_id)
        seconds = ph.delta.read_seconds
    """

    __slots__ = ("name", "_disk", "_before", "_start", "delta", "fields")

    def __init__(self, disk: "DiskModel", name: str):
        self.name = name
        self._disk = disk
        self._before: IOStats | None = None
        self._start = 0.0
        self.delta: IOStats | None = None
        self.fields: dict | None = None

    def annotate(self, **fields) -> None:
        """Attach counter fields to the span event (no-op when disabled)."""
        if self._disk.tracer.enabled:
            if self.fields is None:
                self.fields = {}
            self.fields.update(fields)

    def __enter__(self) -> "PhaseScope":
        if self._before is not None:
            raise RuntimeError(f"phase scope {self.name!r} is already active")
        if self.delta is not None:
            # Re-entering a used scope would silently clobber its delta;
            # callers must open a fresh scope via DiskModel.phase().
            raise RuntimeError(f"phase scope {self.name!r} cannot be reused after exit")
        self._before = self._disk.stats.snapshot()
        self._start = self._before.total_seconds
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._before is None:
            raise RuntimeError(f"phase scope {self.name!r} exited without being entered")
        self.delta = self._disk.stats.diff(self._before)
        self._before = None
        tracer = self._disk.tracer
        if tracer.enabled and exc_type is None:
            tracer.emit(
                self.name,
                sim_time=self._start,
                duration=self.delta.total_seconds,
                io=self.delta.to_dict(),
                fields=self.fields,
            )
        return False


class DiskModel:
    """Charges simulated time for reads/writes and keeps :class:`IOStats`."""

    def __init__(
        self,
        config: DiskConfig | None = None,
        tracer: Tracer | None = None,
        faults: "FaultPlan | None" = None,
    ):
        self.config = config or DiskConfig()
        self.config.validate()
        self.stats = IOStats()
        # Explicit None test: an empty TraceRecorder is falsy (len == 0).
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Armed fault plan; ``None`` (the default) makes every crash point
        #: a no-op attribute check.
        self.faults = faults

    def _cost(self, nbytes: int) -> float:
        return self.config.seek_time + nbytes / self.config.bandwidth

    def read(self, nbytes: int) -> float:
        """Charge one read of ``nbytes``; returns its simulated cost."""
        if nbytes < 0:
            raise ValueError("read size must be >= 0")
        cost = self._cost(nbytes)
        self.stats.read_ops += 1
        self.stats.read_bytes += nbytes
        self.stats.read_seconds += cost
        return cost

    def write(self, nbytes: int) -> float:
        """Charge one write of ``nbytes``; returns its simulated cost."""
        if nbytes < 0:
            raise ValueError("write size must be >= 0")
        cost = self._cost(nbytes)
        self.stats.write_ops += 1
        self.stats.write_bytes += nbytes
        self.stats.write_seconds += cost
        return cost

    @property
    def sim_time(self) -> float:
        """Monotonic simulated seconds accumulated on this device."""
        return self.stats.total_seconds

    def phase(self, name: str) -> PhaseScope:
        """Open a named accounting phase (see :class:`PhaseScope`)."""
        return PhaseScope(self, name)

    def crash_point(self, name: str, **context) -> None:
        """Pass an armed crash point (see :data:`repro.faults.CRASH_POINTS`).

        With no fault plan attached this is a single attribute check.  With
        a plan, the point's arrival is counted and — at the armed
        occurrence — a :class:`~repro.errors.SimulatedCrash` carrying
        ``context`` (plus the current simulated time) is raised.
        """
        if self.faults is not None:
            self.faults.reached(name, sim_time=self.sim_time, **context)
