"""The simulated disk cost model.

The model is deliberately simple — each I/O costs one positioning latency
plus transfer time at sequential bandwidth:

    cost(op of n bytes) = seek_time + n / bandwidth

This is the standard first-order model for container-granularity backup
storage: because containers are large (MiBs) and immutable, real systems are
dominated by *how many containers* are touched and *how many bytes* cross the
bus, which is precisely what the model charges for.  Restoration speed,
sweep-read and sweep-write time in the experiments are all derived from
simulated seconds accumulated here, which preserves the paper's comparisons
(every approach pays under the same tariff) without real hardware.
"""

from __future__ import annotations

from repro.config import DiskConfig
from repro.simio.stats import IOStats


class DiskModel:
    """Charges simulated time for reads/writes and keeps :class:`IOStats`."""

    def __init__(self, config: DiskConfig | None = None):
        self.config = config or DiskConfig()
        self.config.validate()
        self.stats = IOStats()

    def _cost(self, nbytes: int) -> float:
        return self.config.seek_time + nbytes / self.config.bandwidth

    def read(self, nbytes: int) -> float:
        """Charge one read of ``nbytes``; returns its simulated cost."""
        if nbytes < 0:
            raise ValueError("read size must be >= 0")
        cost = self._cost(nbytes)
        self.stats.read_ops += 1
        self.stats.read_bytes += nbytes
        self.stats.read_seconds += cost
        return cost

    def write(self, nbytes: int) -> float:
        """Charge one write of ``nbytes``; returns its simulated cost."""
        if nbytes < 0:
            raise ValueError("write size must be >= 0")
        cost = self._cost(nbytes)
        self.stats.write_ops += 1
        self.stats.write_bytes += nbytes
        self.stats.write_seconds += cost
        return cost

    def snapshot(self) -> IOStats:
        """Snapshot current counters (pair with :meth:`IOStats.since`)."""
        return self.stats.snapshot()
