"""Long-term rotation: Naïve GC vs GCCDF on a single backup source.

Runs the paper's §6.1 protocol (retain N, delete the oldest N/5, GC, ingest
new) over dozens of WEB-workload backups twice — once with classic
mark–sweep, once with GCCDF — and compares restore locality and GC effort.
Demonstrates the headline claim: same dedup ratio, less fragmentation,
lighter GC.

    python examples/backup_rotation.py
"""

from __future__ import annotations

from repro import RotationDriver, SystemConfig, dataset, make_service
from repro.metrics.series import bucket_means
from repro.util.units import format_bytes


def run(approach: str):
    config = SystemConfig.scaled(retained=30, turnover=6)
    service = make_service(approach, config)
    driver = RotationDriver(service, config.retention, dataset_name="web")
    backups = dataset("web", scale=0.5, num_backups=60)
    return driver.run(backups)


def main() -> None:
    results = {approach: run(approach) for approach in ("naive", "gccdf")}

    print("== after the full rotation protocol (60 backups, 6 GC rounds) ==\n")
    for approach, result in results.items():
        print(
            f"{approach:6s}: dedup ratio {result.dedup_ratio:.2f}, "
            f"mean read amp {result.mean_read_amplification:.2f}, "
            f"restore speed {result.restore_speed / (1 << 20):.0f} MiB/s, "
            f"final space {format_bytes(result.physical_bytes)}"
        )

    print("\n== read amplification across retained backups (oldest → newest) ==")
    for approach, result in results.items():
        amps = [r.read_amplification for r in result.restore_reports]
        curve = " ".join(f"{v:4.2f}" for v in bucket_means(amps, 8))
        print(f"{approach:6s}: {curve}")

    print("\n== GC containers produced per round (copy-forward write volume) ==")
    for approach, result in results.items():
        produced = " ".join(f"{r.produced_containers:3d}" for r in result.gc_reports)
        print(f"{approach:6s}: {produced}")

    naive, gccdf = results["naive"], results["gccdf"]
    assert gccdf.dedup_ratio == naive.dedup_ratio, "GCCDF never sacrifices dedup"
    print(
        f"\nGCCDF restores {gccdf.restore_speed / naive.restore_speed:.2f}× faster "
        f"than naïve GC at the identical dedup ratio ({gccdf.dedup_ratio:.2f})."
    )


if __name__ == "__main__":
    main()
