"""Anatomy of a GCCDF pass: clustering and packing, step by step.

Builds the paper's running example by hand — a handful of backups sharing
chunks in controlled patterns — and walks one GC round with the internals
exposed: the mark stage's GS list and RRT, the Analyzer's ownership
clusters, the Planner's packed migration order, and the before/after
container layout with per-backup read amplification.

    python examples/defrag_anatomy.py
"""

from __future__ import annotations

from collections import defaultdict

from repro.backup.system import DedupBackupService
from repro.config import ChunkingConfig, RetentionConfig, SystemConfig
from repro.core.analyzer import Analyzer, ReferenceChecker
from repro.core.gccdf import GCCDFMigration
from repro.core.planner import Planner
from repro.core.preprocessor import Preprocessor
from repro.gc.mark import MarkStage
from repro.gc.migration import SweepContext
from repro.hashing.fingerprints import synthetic_fingerprint
from repro.model import ChunkRef


def refs(ids):
    return [ChunkRef(fp=synthetic_fingerprint("demo", i), size=512) for i in ids]


def show_layout(service, label):
    print(f"-- container layout: {label} --")
    fp_to_id = {}
    for i in range(200):
        fp_to_id[synthetic_fingerprint("demo", i)] = i
    for container in service.store.containers():
        ids = [fp_to_id.get(entry.fp[:20], "?") for entry in container]
        print(f"  container {container.container_id}: chunks {ids}")


def read_amp(service, backup_id):
    recipe = service.recipes.get(backup_id)
    needed = defaultdict(int)
    for entry in recipe.entries:
        needed[service.index.get(entry.fp).container_id] += entry.size
    read = sum(service.store.peek(c).used_bytes for c in needed)
    return read / recipe.logical_size


def main() -> None:
    config = SystemConfig(
        container_size=4 * 512,  # four chunks per container: mixing is visible
        chunking=ChunkingConfig(min_size=128, avg_size=512, max_size=1024),
        retention=RetentionConfig(retained=4, turnover=1),
    ).with_gccdf(split_denial_threshold=0)  # full splits: tiny demo clusters
    service = DedupBackupService(config=config, migration=GCCDFMigration(), name="gccdf")

    # The base backup writes chunks 0..15.  Two later backups keep
    # interleaved subsets (the Fig. 5 dilemma): α keeps 0,1 of every four,
    # β keeps 0,2 — so chunk i%4==0 is shared, 1 is α-only, 2 is β-only,
    # and 3 dies with the base backup.
    base = service.ingest(refs(range(16)), source="base")
    alpha = service.ingest(refs([i for i in range(16) if i % 4 in (0, 1)]), source="alpha")
    beta = service.ingest(refs([i for i in range(16) if i % 4 in (0, 2)]), source="beta")
    print(f"backups: base={base.backup_id}, alpha={alpha.backup_id}, beta={beta.backup_id}\n")

    show_layout(service, "after ingest (dedup natural order)")
    print(f"  read amp: alpha {read_amp(service, alpha.backup_id):.2f}, "
          f"beta {read_amp(service, beta.backup_id):.2f}\n")

    # Delete the base backup and walk the GC by hand.
    service.delete_backup(base.backup_id)
    mark = MarkStage(service.config, service.index, service.recipes, service.disk).run()
    print(f"mark stage: GS list = {list(mark.gs_list)}")
    print(f"            RRT     = { {c: list(b) for c, b in mark.rrt.items()} }\n")

    ctx = SweepContext(
        config=service.config,
        store=service.store,
        index=service.index,
        recipes=service.recipes,
        disk=service.disk,
        mark=mark,
    )
    checker = ReferenceChecker(service.recipes, service.config.gccdf)
    analyzer = Analyzer(checker, service.config.gccdf)
    for segment in Preprocessor(ctx).segments():
        clusters = analyzer.cluster(segment.valid_chunks, segment.involved_backups)
        print(f"segment {segment.index}: involved backups {list(segment.involved_backups)}")
        for cluster in clusters:
            ids = [c.fp[:20] for c in cluster.chunks]
            names = [synthetic_fingerprint("demo", i) for i in range(200)]
            chunk_ids = [names.index(fp) for fp in ids]
            print(f"  cluster owners={list(cluster.ownership)}: chunks {chunk_ids}")
        order = Planner(service.config.gccdf).plan(clusters, segment.involved_backups)
        print(f"  packed migration order: {order.num_chunks} chunks in "
              f"{order.num_clusters} clusters\n")

    # Now run the real GC end-to-end (a fresh service replays the same
    # history so the hand-walk above did not consume the sweep).
    service2 = DedupBackupService(config=config, migration=GCCDFMigration(), name="gccdf")
    service2.ingest(refs(range(16)), source="base")
    a2 = service2.ingest(refs([i for i in range(16) if i % 4 in (0, 1)]), source="alpha")
    b2 = service2.ingest(refs([i for i in range(16) if i % 4 in (0, 2)]), source="beta")
    service2.delete_backup(0)
    report = service2.run_gc()
    print(report.summary(), "\n")
    show_layout(service2, "after GCCDF GC (clustered by ownership)")
    print(f"  read amp: alpha {read_amp(service2, a2.backup_id):.2f}, "
          f"beta {read_amp(service2, b2.backup_id):.2f}")
    print("\nShared chunks now sit apart from α-only and β-only chunks, so each")
    print("restore touches only containers it mostly needs — the §4.1 effect.")


if __name__ == "__main__":
    main()
