"""Multi-source backup fleet: where prior reordering breaks and GCCDF holds.

A backup appliance rarely serves one machine.  This example builds a small
:mod:`repro.fleet` — four tenants (two website sources, two mixed-media
sources) sharing one shard's dedup domain, their backup rotations
interleaved on simulated time — and compares four approaches, reproducing
the paper's §3.1 motivation: MFDedup's neighbor-only dedup collapses on the
interleaved stream, rewriting (HAR) trades away dedup ratio, and GCCDF
keeps the full ratio while containing fragmentation.

    python examples/multi_source_fleet.py
"""

from __future__ import annotations

from repro.fleet import FleetConfig, run_fleet
from repro.metrics.table import Column, ResultTable, fmt_float, fmt_mib


def main() -> None:
    fleet = FleetConfig.synthetic(
        4,
        1,
        datasets=("web", "mix"),
        workload_scale=0.25,
        backups_per_tenant=30,
        stream_pool=None,  # every tenant is an unrelated source
        retained=10,
        turnover=2,
    )
    table = ResultTable(
        title="Four interleaved sources, one dedup domain (30 backups each)",
        columns=[
            Column("approach", align="<"),
            Column("dedup ratio", format=fmt_float(2)),
            Column("mean read amp", format=fmt_float(2)),
            Column("restore MiB/s", format=fmt_mib()),
        ],
    )
    outcomes = {}
    for approach in ("naive", "har", "mfdedup", "gccdf"):
        result = run_fleet(fleet.with_overrides(approach=approach), jobs=1)
        outcomes[approach] = result
        table.add_row(
            approach,
            result.dedup_ratio,
            result.mean_read_amplification,
            result.restore_speed,
        )
    table.print()

    mf, naive, gccdf = outcomes["mfdedup"], outcomes["naive"], outcomes["gccdf"]
    print(
        "MFDedup deduplicates only against the immediately preceding backup —\n"
        "which in a shared fleet domain usually belongs to a *different*\n"
        f"tenant, so its dedup ratio collapses to {mf.dedup_ratio:.2f} "
        f"(vs naïve's {naive.dedup_ratio:.2f}).\n"
    )
    print(
        f"GCCDF keeps naïve's full dedup ratio ({gccdf.dedup_ratio:.2f}) while cutting\n"
        f"mean read amplification {naive.mean_read_amplification:.2f} → "
        f"{gccdf.mean_read_amplification:.2f}."
    )


if __name__ == "__main__":
    main()
