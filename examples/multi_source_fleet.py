"""Multi-source backup fleet: where prior reordering breaks and GCCDF holds.

A backup appliance rarely serves one machine.  This example interleaves
backups from two unrelated sources (a website and a Redis dump — the MIX
dataset) and compares four approaches, reproducing the paper's §3.1
motivation: MFDedup's neighbor-only dedup collapses to no-dedup on the
interleaved stream, rewriting (HAR) trades away dedup ratio, and GCCDF keeps
the full ratio while containing fragmentation.

    python examples/multi_source_fleet.py
"""

from __future__ import annotations

from repro import RotationDriver, SystemConfig, dataset, make_service
from repro.metrics.table import Column, ResultTable, fmt_float, fmt_mib


def main() -> None:
    config = SystemConfig.scaled(retained=30, turnover=6)
    table = ResultTable(
        title="Interleaved website + Redis backups (60 backups, 6 GC rounds)",
        columns=[
            Column("approach", align="<"),
            Column("dedup ratio", format=fmt_float(2)),
            Column("mean read amp", format=fmt_float(2)),
            Column("restore MiB/s", format=fmt_mib()),
        ],
    )
    outcomes = {}
    for approach in ("naive", "har", "mfdedup", "gccdf"):
        service = make_service(approach, config)
        driver = RotationDriver(service, config.retention, dataset_name="mix")
        result = driver.run(dataset("mix", scale=0.5, num_backups=60))
        outcomes[approach] = result
        table.add_row(
            approach,
            result.dedup_ratio,
            result.mean_read_amplification,
            result.restore_speed,
        )
    table.print()

    mf, naive, gccdf = outcomes["mfdedup"], outcomes["naive"], outcomes["gccdf"]
    print(
        "MFDedup deduplicates only against the immediately preceding backup —\n"
        "which here always belongs to the *other* source, so its dedup ratio\n"
        f"collapses to {mf.dedup_ratio:.2f} (effectively no deduplication).\n"
    )
    print(
        f"GCCDF keeps naïve's full dedup ratio ({gccdf.dedup_ratio:.2f}) while cutting\n"
        f"mean read amplification {naive.mean_read_amplification:.2f} → "
        f"{gccdf.mean_read_amplification:.2f}."
    )


if __name__ == "__main__":
    main()
