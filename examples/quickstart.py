"""Quickstart: byte-level backup, dedup, GC, and verified restore.

Runs the whole stack on real bytes: FastCDC chunking, SHA-1 fingerprinting,
container storage, mark–sweep GC with GCCDF's piggybacked defragmentation,
and a byte-exact restore check.

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import SystemConfig
from repro.backup.system import DedupBackupService
from repro.chunking import FastCDC
from repro.chunking.base import split
from repro.core.gccdf import GCCDFMigration
from repro.util.units import format_bytes
from repro.workloads.bytesgen import synthetic_backup_bytes


def main() -> None:
    # A small geometry so the run takes a second; the API is identical at
    # the paper's 4 MiB-container scale (SystemConfig.paper()).
    config = SystemConfig.scaled(retained=10, turnover=3)
    service = DedupBackupService(
        config=config, migration=GCCDFMigration(), name="gccdf"
    )
    chunker = FastCDC(config.chunking)

    # Ingest 6 versions of a 1 MiB backup image; ~10 % churn per version.
    print("== ingest ==")
    versions: dict[int, bytes] = {}
    for version in range(6):
        image = synthetic_backup_bytes(seed=42, version=version, size=1 << 20, churn=0.1)
        result = service.ingest(split(chunker, image), source=f"v{version}")
        versions[result.backup_id] = image
        print(
            f"backup {result.backup_id}: logical {format_bytes(result.logical_bytes)}, "
            f"new data {format_bytes(result.stored_bytes)}, "
            f"deduped {format_bytes(result.dedup_bytes)}"
        )
    print(f"dedup ratio so far: {service.dedup_ratio:.2f}\n")

    # Rotate out the two oldest backups and garbage-collect.  GCCDF rides
    # the sweep: valid chunks are re-clustered by ownership as they move.
    print("== rotate + GC (GCCDF piggybacks on the sweep) ==")
    victims = service.delete_oldest(2)
    report = service.run_gc()
    print(f"deleted backups {victims}")
    print(report.summary(), "\n")

    # Restore every remaining backup and verify bytes.
    print("== restore & verify ==")
    for backup_id in service.live_backup_ids():
        restore_report, data = service.restore_bytes(backup_id)
        assert data == versions[backup_id], "restored bytes must match ingested bytes"
        print(
            f"backup {backup_id}: verified {format_bytes(restore_report.logical_bytes)}, "
            f"read amp {restore_report.read_amplification:.2f}, "
            f"{restore_report.containers_read} containers"
        )
    print("\nall restores byte-identical ✔")


if __name__ == "__main__":
    main()
