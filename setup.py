"""Shim for legacy editable installs (`pip install -e .`).

The offline environment ships setuptools without the `wheel` package, which
breaks PEP 660 editable installs; this file lets pip fall back to the classic
`setup.py develop` path.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
